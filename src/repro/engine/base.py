"""The :class:`ExecutionEngine` protocol — how local algorithms get executed.

Every layer of the package ultimately does the same thing: produce the
radius-``t`` view of some nodes of an input ``(G, x, Id)`` and apply a local
algorithm to those views.  Historically that logic was duplicated between
the ball-evaluation runner, the message-passing simulator, the exhaustive
decider verifiers and the coverage analysis, each re-extracting every view
from scratch.  The engine layer factors it into one seam:

* :meth:`ExecutionEngine.views` — produce the views (backends differ here:
  direct per-node BFS, synchronous message passing, batched+cached BFS);
* :meth:`ExecutionEngine.evaluate_view` — apply an algorithm to one view
  (the caching backend memoises this per canonical view key);
* :meth:`ExecutionEngine.run` / :meth:`ExecutionEngine.run_randomised` —
  the whole-graph drivers built from the two primitives above.

Call sites throughout :mod:`repro.local_model`, :mod:`repro.decision`,
:mod:`repro.separation` and :mod:`repro.analysis` accept an optional
``engine=`` argument and route execution through this protocol;
``engine=None`` resolves to the :class:`~repro.engine.direct.DirectEngine`
singleton, which preserves the original ball-evaluation semantics exactly.

The module also owns :func:`derive_node_seed`, the stable per-node seeding
used by every backend for randomised algorithms: seeds are a pure function
of ``(seed, node index)`` (a splitmix64 mix), so runs are reproducible
across processes and interpreter hash randomisation.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import AlgorithmError, IdentifierError
from ..graphs.identifiers import IdAssignment
from ..graphs.labelled_graph import LabelledGraph, Node
from ..graphs.neighbourhood import Neighbourhood
from ..obs import trace
from ..obs.metrics import STORE_COMPUTED, STORE_REPLAYED

if TYPE_CHECKING:  # imported lazily to keep engine ↔ local_model import-cycle-free
    from ..local_model.algorithm import LocalAlgorithm, RandomisedLocalAlgorithm

__all__ = [
    "EngineLike",
    "EngineStats",
    "ExecutionEngine",
    "derive_node_seed",
    "resolve_engine",
    "default_engine",
    "store_counters",
    "store_job_split",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def derive_node_seed(seed: int, index: int) -> int:
    """Derive the random seed of the node at position ``index`` from a run seed.

    The construction is the splitmix64 output function applied to
    ``seed + (index + 1) * golden_ratio``: a pure, platform-independent
    function of ``(seed, index)``.  In particular it does **not** involve
    ``hash()`` (whose value for strings depends on ``PYTHONHASHSEED``), so
    per-node randomness is reproducible across processes, which the previous
    ``hash(repr(v))``-salted construction was not.
    """
    x = (seed + (index + 1) * _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass
class EngineStats:
    """Counters describing the work one engine has performed.

    ``evaluations`` counts actual calls into ``algorithm.evaluate``;
    ``evaluation_hits`` counts node outputs served from the memo store
    instead.  ``ball_extractions`` counts views built by (batched) BFS;
    ``ball_hits`` counts views served from the per-graph ball cache.
    """

    nodes_run: int = 0
    evaluations: int = 0
    evaluation_hits: int = 0
    ball_extractions: int = 0
    ball_hits: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reports / JSON)."""
        out = {
            "nodes_run": self.nodes_run,
            "evaluations": self.evaluations,
            "evaluation_hits": self.evaluation_hits,
            "ball_extractions": self.ball_extractions,
            "ball_hits": self.ball_hits,
        }
        out.update(self.extra)
        return out


class ExecutionEngine(ABC):
    """Pluggable execution backend for local algorithms.

    Subclasses implement :meth:`views`; the generic drivers below turn that
    into whole-graph execution.  Engines are stateful only in their caches
    and statistics — running the same algorithm on the same input through
    any engine yields identical outputs (the equivalence test-suite asserts
    this across all backends).
    """

    #: Short name used in reports and benchmark tables.
    name: str = "engine"

    def __init__(self) -> None:
        self.stats = EngineStats()
        # Span kinds are precomputed so the tracing-disabled fast path of
        # the public drivers below never concatenates strings per job.
        name = type(self).name
        self._kind_run = name + ".run"
        self._kind_run_randomised = name + ".run_randomised"
        self._kind_run_many = name + ".run_many"
        self._kind_run_randomised_many = name + ".run_randomised_many"

    def reset_stats(self) -> None:
        """Zero the statistics counters (caches are kept)."""
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # Primitive: view production
    # ------------------------------------------------------------------ #

    @abstractmethod
    def views(
        self,
        graph: LabelledGraph,
        radius: int,
        ids: Optional[IdAssignment] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> Dict[Node, Neighbourhood]:
        """Return the radius-``radius`` view of every node (or of ``nodes``)."""

    # ------------------------------------------------------------------ #
    # Primitive: single-view evaluation
    # ------------------------------------------------------------------ #

    def evaluate_view(self, algorithm: "LocalAlgorithm", view: Neighbourhood) -> Hashable:
        """Apply a deterministic local algorithm to one view.

        Identifier information is stripped first when the algorithm declares
        itself Id-oblivious, so obliviousness holds structurally no matter
        where the view came from.
        """
        if not algorithm.uses_identifiers and view.ids is not None:
            view = view.without_ids()
        self.stats.nodes_run += 1
        self.stats.evaluations += 1
        return algorithm.evaluate(view)

    # ------------------------------------------------------------------ #
    # Drivers
    # ------------------------------------------------------------------ #

    def _ids_for(self, algorithm, ids: Optional[IdAssignment]) -> Optional[IdAssignment]:
        if algorithm.uses_identifiers:
            if ids is None:
                raise IdentifierError(
                    f"algorithm {algorithm.name!r} runs in the full LOCAL model and needs an identifier assignment"
                )
            return ids
        return None

    def run(
        self,
        algorithm: "LocalAlgorithm",
        graph: LabelledGraph,
        ids: Optional[IdAssignment] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> Dict[Node, Hashable]:
        """Run a deterministic local algorithm at every node (or at ``nodes``).

        The public drivers (``run`` and friends) each time one span around
        the backend-specific ``_*_core`` implementation; subclasses that
        replace a driver override the core method, so every public call
        yields exactly one span no matter how the backends delegate.
        """
        with trace.span(self._kind_run, graph_nodes=graph.num_nodes()):
            return self._run_core(algorithm, graph, ids, nodes)

    def _run_core(
        self,
        algorithm: "LocalAlgorithm",
        graph: LabelledGraph,
        ids: Optional[IdAssignment] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> Dict[Node, Hashable]:
        """Backend implementation of :meth:`run` (unspanned)."""
        chosen = list(nodes) if nodes is not None else list(graph.nodes())
        use_ids = self._ids_for(algorithm, ids)
        view_map = self.views(graph, algorithm.radius, use_ids, chosen)
        return {v: self.evaluate_view(algorithm, view_map[v]) for v in chosen}

    def run_at(
        self,
        algorithm: "LocalAlgorithm",
        graph: LabelledGraph,
        node: Node,
        ids: Optional[IdAssignment] = None,
    ) -> Hashable:
        """Run a deterministic local algorithm at a single node."""
        return self.run(algorithm, graph, ids, nodes=[node])[node]

    def run_randomised(
        self,
        algorithm: "RandomisedLocalAlgorithm",
        graph: LabelledGraph,
        ids: Optional[IdAssignment] = None,
        seed: Optional[int] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> Dict[Node, Hashable]:
        """Run a randomised local algorithm once, with independent per-node randomness.

        Each node's :class:`random.Random` stream is seeded by
        :func:`derive_node_seed` from the run seed and the node's position —
        the paper's "unbounded string of random bits" per node, made
        reproducible.  When ``seed`` is ``None`` a fresh run seed is drawn
        from the global generator.  Randomised outputs are never memoised.
        """
        with trace.span(self._kind_run_randomised, graph_nodes=graph.num_nodes()):
            return self._run_randomised_core(algorithm, graph, ids, seed, nodes)

    def _run_randomised_core(
        self,
        algorithm: "RandomisedLocalAlgorithm",
        graph: LabelledGraph,
        ids: Optional[IdAssignment] = None,
        seed: Optional[int] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> Dict[Node, Hashable]:
        """Backend implementation of :meth:`run_randomised` (unspanned)."""
        chosen = list(nodes) if nodes is not None else list(graph.nodes())
        use_ids = self._ids_for(algorithm, ids)
        base = seed if seed is not None else random.randrange(2**63)
        view_map = self.views(graph, algorithm.radius, use_ids, chosen)
        outputs: Dict[Node, Hashable] = {}
        for index, v in enumerate(chosen):
            rng = random.Random(derive_node_seed(base, index))
            self.stats.nodes_run += 1
            self.stats.evaluations += 1
            outputs[v] = algorithm.evaluate(view_map[v], rng)
        return outputs

    # ------------------------------------------------------------------ #
    # Batched drivers — the fan-out seam
    # ------------------------------------------------------------------ #
    #
    # The verification sweeps (``verify_decider``, the Monte-Carlo
    # estimators, campaign runs) are embarrassingly parallel across their
    # ``(graph, ids)`` / ``(graph, ids, seed)`` jobs.  They submit whole job
    # lists through these two methods so that a parallel backend can shard
    # the list across workers; the default implementations run the jobs
    # sequentially, which keeps every serial backend's behaviour unchanged.

    def run_many(
        self,
        algorithm: "LocalAlgorithm",
        jobs: Sequence[Tuple[LabelledGraph, Optional[IdAssignment]]],
    ) -> List[Dict[Node, Hashable]]:
        """Run a deterministic algorithm over many ``(graph, ids)`` jobs.

        Returns one output map per job, in job order.
        """
        with trace.span(self._kind_run_many, jobs=len(jobs)):
            return self._run_many_core(algorithm, jobs)

    def _run_many_core(
        self,
        algorithm: "LocalAlgorithm",
        jobs: Sequence[Tuple[LabelledGraph, Optional[IdAssignment]]],
    ) -> List[Dict[Node, Hashable]]:
        """Backend implementation of :meth:`run_many` (unspanned)."""
        return [self.run(algorithm, graph, ids) for graph, ids in jobs]

    def run_randomised_many(
        self,
        algorithm: "RandomisedLocalAlgorithm",
        jobs: Sequence[Tuple[LabelledGraph, Optional[IdAssignment], int]],
    ) -> List[Dict[Node, Hashable]]:
        """Run a randomised algorithm over many ``(graph, ids, seed)`` jobs.

        Each job's seed is explicit, so results are reproducible and
        independent of how a backend orders or shards the jobs.
        """
        with trace.span(self._kind_run_randomised_many, jobs=len(jobs)):
            return self._run_randomised_many_core(algorithm, jobs)

    def _run_randomised_many_core(
        self,
        algorithm: "RandomisedLocalAlgorithm",
        jobs: Sequence[Tuple[LabelledGraph, Optional[IdAssignment], int]],
    ) -> List[Dict[Node, Hashable]]:
        """Backend implementation of :meth:`run_randomised_many` (unspanned)."""
        return [self.run_randomised(algorithm, graph, ids, seed) for graph, ids, seed in jobs]

    # ------------------------------------------------------------------ #
    # Cross-run persistence seam
    # ------------------------------------------------------------------ #

    def with_store(self, store) -> "ExecutionEngine":
        """Return this engine wrapped in a cross-run persistent verdict store.

        ``store`` is a directory path or an open
        :class:`~repro.engine.persistent.VerdictStore`.  The wrapper
        replays whole jobs whose digest is already settled on disk and
        delegates only the misses to this engine; see
        :class:`~repro.engine.persistent.PersistentEngine`.
        """
        from .persistent import PersistentEngine

        return PersistentEngine(store, inner=self)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        """Release any long-lived execution resources (worker pools).

        A no-op for the in-process backends; the parallel backend stops
        its persistent workers here.  Engines stay usable after shutdown —
        resources are re-acquired lazily.
        """

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------- #
# Store-traffic attribution
# ---------------------------------------------------------------------- #
#
# Sweeping drivers (``verify_decider``, the adversarial hunts) report how
# many of their jobs replayed from a cross-run verdict store.  They
# snapshot the engine's counters before the sweep and diff afterwards;
# these helpers are that idiom, shared so the counter keys live in one
# place.


def store_counters(engine: "ExecutionEngine") -> Tuple[int, int]:
    """Snapshot the engine's ``(store_replayed, store_computed)`` counters."""
    return (
        engine.stats.extra.get(STORE_REPLAYED.name, 0),
        engine.stats.extra.get(STORE_COMPUTED.name, 0),
    )


def store_job_split(
    engine: "ExecutionEngine", before: Tuple[int, int], fallback_computed: int
) -> Tuple[int, int]:
    """Attribute the jobs run since ``before`` to replay vs fresh computation.

    Returns ``(replayed, computed)``.  A storeless engine never moves the
    counters; its jobs all count as computed (``fallback_computed``, the
    driver's own job tally).
    """
    replayed, computed = store_counters(engine)
    replayed -= before[0]
    computed -= before[1]
    if replayed or computed:
        return replayed, computed
    return 0, fallback_computed


# ---------------------------------------------------------------------- #
# Engine resolution
# ---------------------------------------------------------------------- #

#: Anything accepted by ``engine=`` arguments across the package: a concrete
#: engine, a backend name (``"direct"`` / ``"synchronous"`` / ``"cached"`` /
#: ``"parallel"``), or ``None`` for the shared default.
EngineLike = Union[None, str, "ExecutionEngine"]

_default: Optional["ExecutionEngine"] = None


def default_engine() -> "ExecutionEngine":
    """Return the process-wide default engine (a shared :class:`DirectEngine`)."""
    global _default
    if _default is None:
        from .direct import DirectEngine

        _default = DirectEngine()
    return _default


def resolve_engine(engine: Union[None, str, "ExecutionEngine"]) -> "ExecutionEngine":
    """Resolve an ``engine=`` argument to a concrete backend.

    ``None`` means the shared default :class:`DirectEngine` (the original
    ball-evaluation semantics); a string names a backend (``"direct"``,
    ``"synchronous"``, ``"cached"``, ``"parallel"``) and builds a fresh
    instance of it; an :class:`ExecutionEngine` instance is returned as-is.
    """
    if engine is None:
        return default_engine()
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, str):
        from .cached import CachedEngine
        from .direct import DirectEngine
        from .parallel import ParallelEngine
        from .synchronous import SynchronousEngine

        registry = {
            "direct": DirectEngine,
            "synchronous": SynchronousEngine,
            "cached": CachedEngine,
            "parallel": ParallelEngine,
        }
        try:
            return registry[engine]()
        except KeyError:
            raise AlgorithmError(
                f"unknown execution engine {engine!r}; choose from {sorted(registry)}"
            ) from None
    raise AlgorithmError(f"cannot interpret {engine!r} as an execution engine")
