"""repro — reproduction of "What can be decided locally without identifiers?" (PODC 2013).

The package is organised as follows:

* :mod:`repro.graphs` — labelled graphs, identifier assignments, radius-t
  neighbourhoods, graph generators, isomorphism;
* :mod:`repro.local_model` — local algorithms (LOCAL / Id-oblivious / OI /
  randomised), the ball-evaluation runner and the synchronous
  message-passing simulator, port numberings;
* :mod:`repro.engine` — pluggable execution backends (direct ball
  evaluation, synchronous message passing, batched+memoised caching,
  multiprocess parallel sharding) that every execution path routes through
  via ``engine=`` arguments;
* :mod:`repro.adversary` — guided adversarial search for identifier
  assignments defeating candidate deciders (seedable strategies, the
  batched ``find_counterexample`` driver, delta-debugging shrinking to
  minimal witnesses, and the ``python -m repro.adversary`` CLI);
* :mod:`repro.campaign` — declarative experiment campaigns: scenario specs
  over the paper's constructions, a runner collecting verdicts / timings /
  engine statistics into JSON reports, and the ``python -m repro.campaign``
  CLI;
* :mod:`repro.decision` — labelled graph properties, decision semantics,
  classes LD / LD* / NLD / BPLD, the generic Id-oblivious simulation ``A*``,
  randomised (p, q)-deciders;
* :mod:`repro.turing` — Turing machines, execution tables, machine library;
* :mod:`repro.properties` — the classic properties used as running examples
  (colourings, MIS, matchings, planarity, path languages);
* :mod:`repro.separation` — the paper's two separation constructions
  (Section 2: bounded identifiers; Section 3 + Appendix A: computability)
  and the randomised decider of Corollary 1;
* :mod:`repro.analysis` — neighbourhood-coverage analysis (the engine of the
  impossibility arguments), experiment records and report formatting.
"""

from . import adversary, decision, engine, graphs, local_model
from .adversary import MinimalCounterExample, find_counterexample, shrink_counterexample
from .decision import Property, decide
from .engine import (
    CachedEngine,
    DirectEngine,
    ExecutionEngine,
    ParallelEngine,
    PersistentEngine,
    SynchronousEngine,
    VerdictStore,
    resolve_engine,
)
from .graphs import IdAssignment, LabelledGraph
from .local_model import NO, YES, Verdict

__version__ = "1.3.0"

__all__ = [
    "graphs",
    "local_model",
    "engine",
    "decision",
    "adversary",
    "find_counterexample",
    "shrink_counterexample",
    "MinimalCounterExample",
    "ExecutionEngine",
    "DirectEngine",
    "SynchronousEngine",
    "CachedEngine",
    "ParallelEngine",
    "PersistentEngine",
    "VerdictStore",
    "resolve_engine",
    "LabelledGraph",
    "IdAssignment",
    "YES",
    "NO",
    "Verdict",
    "Property",
    "decide",
    "__version__",
]
