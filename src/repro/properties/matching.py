"""Maximal matching, encoded as a labelled graph property.

A matching is encoded in the node labels: each matched node's label names
the neighbour it is matched to (so an edge ``{u, v}`` is in the matching iff
``x(u) = ("matched", id-of-v)`` — since node names are not visible to local
algorithms, the label instead records the *matched neighbour's own tag*).
To keep the encoding purely local we use the convention that both endpoints
of a matched edge carry the same randomly chosen edge tag; unmatched nodes
carry ``None``.

Properly encoded maximal matchings are locally checkable with horizon 2 and
no identifiers:

* a matched node rejects unless exactly one neighbour carries the same tag;
* an unmatched node rejects if it has an unmatched neighbour (maximality).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..decision.property import Property
from ..graphs.generators import cycle_graph, path_graph
from ..graphs.labelled_graph import LabelledGraph, Node
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict

__all__ = ["MaximalMatchingProperty", "MaximalMatchingDecider", "greedy_matching", "encode_matching"]


def encode_matching(graph: LabelledGraph, matching: Dict[Node, Node]) -> LabelledGraph:
    """Label a graph with a matching given as a symmetric partner map.

    Each matched pair receives a shared ``("matched", tag)`` label, where the
    tag is derived deterministically from the pair's position so that
    distinct matched edges sharing an endpoint neighbourhood get distinct
    tags with overwhelming likelihood in the generated families.
    """
    labels: Dict[Node, object] = {v: None for v in graph.nodes()}
    tag = 0
    seen = set()
    for u, v in matching.items():
        if u in seen or v in seen:
            continue
        seen.add(u)
        seen.add(v)
        labels[u] = ("matched", tag)
        labels[v] = ("matched", tag)
        tag += 1
    return graph.with_labels(labels)


class MaximalMatchingProperty(Property):
    """The property "the labels encode a maximal matching"."""

    name = "maximal-matching"

    def contains(self, graph: LabelledGraph) -> bool:
        labels = graph.labels()
        matched_nodes = {}
        for v, lab in labels.items():
            if lab is None:
                continue
            if not (isinstance(lab, tuple) and len(lab) == 2 and lab[0] == "matched"):
                return False
            matched_nodes[v] = lab
        # Every matched node must have exactly one neighbour with the same tag,
        # and no non-neighbour conflicts within its neighbourhood are relevant.
        for v, lab in matched_nodes.items():
            partners = [u for u in graph.neighbours(v) if labels[u] == lab]
            if len(partners) != 1:
                return False
        # Maximality: no edge with both endpoints unmatched.
        for (u, v) in graph.edges():
            if labels[u] is None and labels[v] is None:
                return False
        return True

    def yes_instances(self) -> Iterator[LabelledGraph]:
        yield encode_matching(path_graph(4), {0: 1, 1: 0, 2: 3, 3: 2})
        yield encode_matching(cycle_graph(6), {0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4})
        yield encode_matching(path_graph(3), {0: 1, 1: 0})
        yield encode_matching(cycle_graph(5), {0: 1, 1: 0, 2: 3, 3: 2})

    def no_instances(self) -> Iterator[LabelledGraph]:
        # Both endpoints unmatched on an edge (not maximal).
        yield path_graph(4).with_labels({0: None, 1: None, 2: None, 3: None})
        # A node claims a match but no neighbour shares the tag.
        yield path_graph(3).with_labels({0: ("matched", 0), 1: None, 2: None})
        # Two neighbours share the same tag with a third (not a matching).
        yield path_graph(3).with_labels({0: ("matched", 0), 1: ("matched", 0), 2: ("matched", 0)})


class MaximalMatchingDecider(IdObliviousAlgorithm):
    """Horizon-1 Id-oblivious decider for encoded maximal matchings."""

    def __init__(self) -> None:
        super().__init__(radius=1, name="matching-decider")

    def evaluate(self, view: Neighbourhood) -> Verdict:
        mine = view.center_label()
        neighbours = view.nodes_at_distance(1)
        if mine is None:
            # Maximality: some neighbour must be matched.
            if any(view.label_of(u) is None for u in neighbours):
                return NO
            return YES
        if not (isinstance(mine, tuple) and len(mine) == 2 and mine[0] == "matched"):
            return NO
        partners = [u for u in neighbours if view.label_of(u) == mine]
        return YES if len(partners) == 1 else NO


def greedy_matching(graph: LabelledGraph) -> LabelledGraph:
    """Return a copy of the graph labelled with a greedily computed maximal matching."""
    matched: Dict[Node, Node] = {}
    for (u, v) in graph.edges():
        if u not in matched and v not in matched:
            matched[u] = v
            matched[v] = u
    return encode_matching(graph, matched)
