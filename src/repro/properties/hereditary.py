"""Hereditary languages.

A labelled graph property is *hereditary* when it is closed under taking
induced (label-preserving) subgraphs.  Hereditary languages play a special
role in the related work the paper cites: Fraigniaud–Korman–Peleg proved a
sharp randomisation threshold for them, and Fraigniaud–Halldórsson–Korman
showed ``LD* = LD`` holds for hereditary languages.  The paper's Corollary 1
observes that its Section-3 witness property shows the threshold result does
*not* extend beyond hereditary languages in the Id-oblivious setting.

This module provides:

* :class:`HereditaryProperty` — a wrapper marking a property as hereditary
  and able to *test* heredity empirically on small instance families (the
  test enumerates induced subgraphs);
* :func:`is_hereditary_on` — the standalone empirical check, used in tests
  both positively (colouring, planarity, independence are hereditary) and
  negatively (MIS and the paper's witness properties are not).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from ..decision.property import Property
from ..graphs.labelled_graph import LabelledGraph

__all__ = ["HereditaryProperty", "is_hereditary_on", "induced_subgraphs"]


def induced_subgraphs(
    graph: LabelledGraph,
    min_nodes: int = 1,
    max_subsets: Optional[int] = None,
) -> Iterator[LabelledGraph]:
    """Yield every induced (label-preserving) subgraph of a small graph.

    The number of subgraphs is exponential; ``max_subsets`` truncates the
    enumeration for safety.
    """
    nodes = list(graph.nodes())
    count = 0
    for size in range(min_nodes, len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            yield graph.induced_subgraph(subset)
            count += 1
            if max_subsets is not None and count >= max_subsets:
                return


def is_hereditary_on(
    prop: Property,
    instances: Iterable[LabelledGraph],
    max_subsets_per_instance: int = 2000,
) -> bool:
    """Empirically check heredity: every induced subgraph of a yes-instance is again a yes-instance.

    Only instances that are themselves yes-instances contribute constraints.
    A single violating subgraph refutes heredity; a clean pass over finite
    families is evidence, not proof.
    """
    for graph in instances:
        if not prop.contains(graph):
            continue
        for sub in induced_subgraphs(graph, min_nodes=1, max_subsets=max_subsets_per_instance):
            if not prop.contains(sub):
                return False
    return True


class HereditaryProperty(Property):
    """Wrap an existing property and assert (and optionally verify) that it is hereditary."""

    def __init__(self, base: Property, verified_on: Optional[Sequence[LabelledGraph]] = None) -> None:
        self.base = base
        self.name = f"hereditary:{base.name}"
        if verified_on is not None and not is_hereditary_on(base, verified_on):
            from ..errors import VerificationError

            raise VerificationError(
                f"property {base.name!r} is not hereditary on the supplied instances"
            )

    def contains(self, graph: LabelledGraph) -> bool:
        return self.base.contains(graph)

    def yes_instances(self) -> Iterator[LabelledGraph]:
        return self.base.yes_instances()

    def no_instances(self) -> Iterator[LabelledGraph]:
        return self.base.no_instances()
