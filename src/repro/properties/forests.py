"""Spanning-forest certificates: locally checkable BFS-layer labellings.

Nelson and Yu (arXiv:1807.05135) prove lower bounds for spanning-forest
computation whose difficulty separates dense from degenerate families —
the matrix crosses this axis over exactly those families.  The *certificate*
form used here is the classic locally checkable one: every node carries a
non-negative integer layer; layer ``0`` marks a root, and every node at
layer ``d > 0`` must see a neighbour at layer ``d - 1``.  A labelling
satisfies the property iff following strictly decreasing layers from any
node reaches a root, i.e. the "parent towards a smaller layer" edges form a
spanning forest rooted at the layer-0 nodes.  The check is horizon-1: a
node only compares its own layer with its neighbours' layers.

The local condition really is equivalent to the global one: if some
component had no root, its minimum-layer node would have no neighbour one
layer below it and the local check would fail there.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..decision.property import Property
from ..graphs.generators import cycle_graph, path_graph, star_graph
from ..graphs.labelled_graph import LabelledGraph
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict

__all__ = [
    "SpanningForestCertificateProperty",
    "SpanningForestCertificateDecider",
    "bfs_layer_certificate",
]


class SpanningForestCertificateProperty(Property):
    """The property "the labels are a valid BFS-layer spanning-forest certificate".

    Labels must be non-negative ints; a node labelled ``d > 0`` must have a
    neighbour labelled ``d - 1``; ``0`` marks a root.  Every labelled graph
    admits a yes-labelling (BFS layers per component), so the property is a
    certificate language rather than a structural restriction.
    """

    name = "spanning-forest-certificate"

    def contains(self, graph: LabelledGraph) -> bool:
        labels = graph.labels()
        for v, label in labels.items():
            if not isinstance(label, int) or label < 0:
                return False
            if label > 0 and not any(
                labels[u] == label - 1 for u in graph.neighbours(v)
            ):
                return False
        return True

    def yes_instances(self) -> Iterator[LabelledGraph]:
        yield bfs_layer_certificate(path_graph(5))
        yield bfs_layer_certificate(cycle_graph(6))
        yield bfs_layer_certificate(star_graph(4))

    def no_instances(self) -> Iterator[LabelledGraph]:
        yield cycle_graph(4).with_labels({v: 1 for v in cycle_graph(4).nodes()})
        yield path_graph(3).with_labels({0: 0, 1: 2, 2: 0})


class SpanningForestCertificateDecider(IdObliviousAlgorithm):
    """Horizon-1 Id-oblivious decider for the BFS-layer certificate.

    Reject iff my layer is malformed, or positive without a neighbour one
    layer below me.
    """

    def __init__(self) -> None:
        super().__init__(radius=1, name="spanning-forest-certificate-decider")

    def evaluate(self, view: Neighbourhood) -> Verdict:
        mine = view.center_label()
        if not isinstance(mine, int) or mine < 0:
            return NO
        if mine == 0:
            return YES
        for u in view.nodes_at_distance(1):
            if view.label_of(u) == mine - 1:
                return YES
        return NO


def _node_order(node) -> tuple:
    """Total order over node names of mixed types (caterpillars use int
    spine nodes and tuple leg nodes), so root choice and BFS neighbour
    order stay deterministic on every family."""
    return (type(node).__name__, repr(node))


def bfs_layer_certificate(graph: LabelledGraph) -> LabelledGraph:
    """Decorate ``graph`` with BFS layers from the first node of each component.

    The root is the component's minimum under a type-aware total order, so
    the labelling is deterministic even when node names mix types.  The
    result always satisfies :class:`SpanningForestCertificateProperty`, on
    connected and disconnected inputs alike.
    """
    layers = {}
    for component in graph.connected_components():
        root = min(component, key=_node_order)
        layers[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in sorted(graph.neighbours(v), key=_node_order):
                if u not in layers:
                    layers[u] = layers[v] + 1
                    queue.append(u)
    return graph.with_labels(layers)
