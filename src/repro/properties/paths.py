"""Languages on labelled paths with a finite set of input values.

The prior work the paper builds on (Fraigniaud–Halldórsson–Korman,
OPODIS 2012) showed that ``LD* = LD`` holds for "languages defined on
paths, with a finite set of input values".  This module implements that
class of properties so that the reproduction can demonstrate the *positive*
side of the landscape next to the paper's separations:

* a :class:`RegularPathProperty` is specified by a deterministic finite
  automaton over the label alphabet; a labelled path is a yes-instance iff
  the label word read along the path (in either direction — the property
  must be isomorphism-closed) is accepted;
* :class:`RegularPathProperty.decider` produces an Id-oblivious local
  decider for the *local* (factor-closed) part of the language, and the
  tests/benchmarks use these properties as LD*-members in the Table-1
  experiment.

To stay honest about locality we restrict the constructor to *locally
checkable* path languages: those definable by forbidding a finite set of
label windows of bounded width (a strictly local language in formal-language
terms).  Every such language is decidable by a horizon-``w`` Id-oblivious
algorithm, matching the cited prior-work result for this reproduction's
purposes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..decision.property import Property
from ..errors import GraphError
from ..graphs.generators import path_graph
from ..graphs.labelled_graph import LabelledGraph, Node
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict

__all__ = ["RegularPathProperty", "ForbiddenWindowDecider", "label_word", "is_path"]


def is_path(graph: LabelledGraph) -> bool:
    """Return ``True`` when the graph is a simple path (including single nodes)."""
    n = graph.num_nodes()
    if n == 0:
        return False
    if n == 1:
        return graph.num_edges() == 0
    degrees = [graph.degree(v) for v in graph.nodes()]
    return (
        graph.is_connected()
        and graph.num_edges() == n - 1
        and sorted(degrees)[:2] == [1, 1]
        and max(degrees) <= 2
    )


def label_word(graph: LabelledGraph) -> List:
    """Return the label word read along a path graph, from one endpoint to the other.

    The starting endpoint is chosen deterministically (smallest repr), so the
    word is well defined up to reversal; properties over path words must be
    reversal-closed to be isomorphism-invariant, and the membership test
    checks both directions anyway.
    """
    if not is_path(graph):
        raise GraphError("label_word is only defined for path graphs")
    if graph.num_nodes() == 1:
        return [graph.label(next(iter(graph.nodes())))]
    endpoints = sorted((v for v in graph.nodes() if graph.degree(v) == 1), key=repr)
    start = endpoints[0]
    word = []
    prev: Optional[Node] = None
    current: Optional[Node] = start
    while current is not None:
        word.append(graph.label(current))
        nxt = [u for u in graph.neighbours(current) if u != prev]
        prev, current = current, (nxt[0] if nxt else None)
    return word


class RegularPathProperty(Property):
    """A path language defined by forbidden label windows (a strictly local language).

    Parameters
    ----------
    alphabet:
        The finite set of admissible labels.  Any label outside the alphabet
        makes the instance a no-instance.
    forbidden_windows:
        Sequences of labels that may not occur as a contiguous factor of the
        path's label word (in either direction).
    name:
        Property name used in reports.
    require_path:
        When ``True`` (default) non-path topologies are no-instances.
    """

    def __init__(
        self,
        alphabet: Sequence,
        forbidden_windows: Sequence[Sequence],
        name: str = "path-language",
        require_path: bool = True,
    ) -> None:
        self.alphabet = list(alphabet)
        self.forbidden = [tuple(w) for w in forbidden_windows]
        if any(len(w) == 0 for w in self.forbidden):
            raise GraphError("forbidden windows must be non-empty")
        self.window = max((len(w) for w in self.forbidden), default=1)
        self.name = name
        self.require_path = require_path

    def contains(self, graph: LabelledGraph) -> bool:
        if self.require_path and not is_path(graph):
            return False
        labels = graph.labels()
        if any(lab not in self.alphabet for lab in labels.values()):
            return False
        word = label_word(graph)
        for direction in (word, list(reversed(word))):
            for w in self.forbidden:
                for i in range(len(direction) - len(w) + 1):
                    if tuple(direction[i : i + len(w)]) == w:
                        return False
        return True

    def decider(self) -> "ForbiddenWindowDecider":
        """Return the Id-oblivious horizon-``w`` decider for this language."""
        return ForbiddenWindowDecider(self)

    # Instance generators over all words of bounded length -------------- #

    def _words(self, length: int) -> Iterator[Tuple]:
        import itertools

        yield from itertools.product(self.alphabet, repeat=length)

    def instances_up_to(self, max_length: int) -> Iterator[Tuple[LabelledGraph, bool]]:
        """Yield ``(path, membership)`` for every label word of length 1..max_length."""
        for length in range(1, max_length + 1):
            for word in self._words(length):
                g = path_graph(length).with_labels({i: word[i] for i in range(length)})
                yield g, self.contains(g)

    def yes_instances(self) -> Iterator[LabelledGraph]:
        for g, member in self.instances_up_to(4):
            if member:
                yield g

    def no_instances(self) -> Iterator[LabelledGraph]:
        for g, member in self.instances_up_to(4):
            if not member:
                yield g


class ForbiddenWindowDecider(IdObliviousAlgorithm):
    """Id-oblivious decider for a :class:`RegularPathProperty`.

    Every node checks, within its horizon (the window width), that

    * the topology looks locally like a path (degree at most 2, no cycles in
      the view),
    * all visible labels are in the alphabet, and
    * no forbidden window occurs among the label factors visible to it.

    Because every contiguous factor of the path is fully visible to at least
    one node at this horizon, the decider is complete and sound for path
    inputs; non-path inputs are rejected by the node that sees the violation
    (a degree-3 node, or a cycle closing within the view — a cycle longer
    than the horizon everywhere cannot be excluded locally, matching the
    fact that "being a path" alone is not locally decidable, so the property
    here treats long unlabelled cycles as... still rejected by the window
    checks only when a forbidden factor occurs; the ``require_path`` flag of
    the property is therefore only fully enforced on families that do not
    contain long label-consistent cycles, which is the case for all families
    shipped with this library).
    """

    def __init__(self, prop: RegularPathProperty) -> None:
        super().__init__(radius=max(prop.window, 1), name=f"{prop.name}-decider")
        self.prop = prop

    def evaluate(self, view: Neighbourhood) -> Verdict:
        # Topology: within the view every node must have degree <= 2 and the
        # view must be cycle-free (a tree), otherwise this is not a path.
        for v in view.nodes():
            if view.graph.degree(v) > 2:
                return NO
        if view.graph.num_edges() >= view.graph.num_nodes():
            return NO  # a cycle closes within the view
        # Labels in alphabet.
        for v in view.nodes():
            if view.label_of(v) not in self.prop.alphabet:
                return NO
        # Forbidden windows among factors through the centre.
        word = self._word_through_center(view)
        for direction in (word, list(reversed(word))):
            for w in self.prop.forbidden:
                for i in range(len(direction) - len(w) + 1):
                    if tuple(direction[i : i + len(w)]) == w:
                        return NO
        return YES

    @staticmethod
    def _word_through_center(view: Neighbourhood) -> List:
        """Return the label word of the path segment visible in the view (centre included)."""
        # The view of a path is itself a path; read it end to end.
        g = view.graph
        endpoints = [v for v in g.nodes() if g.degree(v) <= 1]
        if not endpoints:
            return [view.center_label()]
        start = sorted(endpoints, key=repr)[0]
        word = []
        prev = None
        current = start
        while current is not None:
            word.append(g.label(current))
            nxt = [u for u in g.neighbours(current) if u != prev]
            prev, current = current, (nxt[0] if nxt else None)
        return word
