"""Classic labelled-graph properties used as running examples in the paper and prior work."""

from .colouring import ProperColouringDecider, ProperColouringProperty, greedy_colouring
from .independent_set import (
    IN_SET,
    OUT_SET,
    MaximalIndependentSetDecider,
    MaximalIndependentSetProperty,
    greedy_mis,
)
from .matching import (
    MaximalMatchingDecider,
    MaximalMatchingProperty,
    encode_matching,
    greedy_matching,
)
from .planarity import PlanarityProperty
from .paths import ForbiddenWindowDecider, RegularPathProperty, is_path, label_word
from .hereditary import HereditaryProperty, induced_subgraphs, is_hereditary_on
from .fractional import (
    FractionalColouringDecider,
    FractionalColouringProperty,
    fractional_colouring,
)
from .forests import (
    SpanningForestCertificateDecider,
    SpanningForestCertificateProperty,
    bfs_layer_certificate,
)

__all__ = [
    "ProperColouringDecider",
    "ProperColouringProperty",
    "greedy_colouring",
    "IN_SET",
    "OUT_SET",
    "MaximalIndependentSetDecider",
    "MaximalIndependentSetProperty",
    "greedy_mis",
    "MaximalMatchingDecider",
    "MaximalMatchingProperty",
    "encode_matching",
    "greedy_matching",
    "PlanarityProperty",
    "ForbiddenWindowDecider",
    "RegularPathProperty",
    "is_path",
    "label_word",
    "HereditaryProperty",
    "induced_subgraphs",
    "is_hereditary_on",
    "FractionalColouringDecider",
    "FractionalColouringProperty",
    "fractional_colouring",
    "SpanningForestCertificateDecider",
    "SpanningForestCertificateProperty",
    "bfs_layer_certificate",
]
