"""Fractional (a:b) colouring: sets of colours instead of single colours.

Bousquet, Esperet and Pirot (arXiv:2012.01752) study *distributed
fractional colouring*: each node receives a set of ``b`` colours from a
palette of ``a`` and adjacent nodes' sets must be disjoint (an ``a:b``
colouring; ``b = 1`` recovers proper colouring).  Their bounds shift across
exactly the grid/torus/sparse families the workload matrix generates,
which makes the property a discriminating matrix axis: it stays horizon-1
locally checkable (compare my set with my neighbours' sets), yet its
instance structure is richer than single-colour properness.

Labels are **sorted tuples of ints** rather than ``frozenset`` so their
``repr`` — which the engines' canonical keys and the verdict store digest
— is deterministic across processes and Python versions.
"""

from __future__ import annotations

from typing import Optional

from ..decision.property import Property
from ..graphs.labelled_graph import LabelledGraph
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict
from .colouring import greedy_colouring

__all__ = [
    "FractionalColouringProperty",
    "FractionalColouringDecider",
    "fractional_colouring",
]


def _as_colour_set(label: object) -> Optional[tuple]:
    """Normalise a label to a strictly increasing int tuple, or ``None`` if malformed."""
    if not isinstance(label, tuple) or not label:
        return None
    if not all(isinstance(c, int) for c in label):
        return None
    if any(label[i] >= label[i + 1] for i in range(len(label) - 1)):
        return None  # unsorted or duplicated colours
    return label


class FractionalColouringProperty(Property):
    """The property "the labels form an ``a:b`` fractional colouring".

    Every node must carry exactly ``b`` distinct colours (a sorted int
    tuple) and adjacent colour sets must be disjoint.  With ``a = None``
    the palette is unbounded (only set size and disjointness are checked);
    otherwise colours must come from ``{0, ..., a-1}``.
    """

    def __init__(self, b: int = 2, a: Optional[int] = None) -> None:
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        if a is not None and a < b:
            raise ValueError(f"palette a={a} cannot be smaller than set size b={b}")
        self.a = a
        self.b = b
        self.name = (
            f"fractional-{a}:{b}-colouring" if a is not None else f"fractional-{b}-set-colouring"
        )

    def contains(self, graph: LabelledGraph) -> bool:
        sets = {}
        for v, label in graph.labels().items():
            colours = _as_colour_set(label)
            if colours is None or len(colours) != self.b:
                return False
            if self.a is not None and not all(0 <= c < self.a for c in colours):
                return False
            sets[v] = frozenset(colours)
        return all(not (sets[u] & sets[v]) for (u, v) in graph.edges())


class FractionalColouringDecider(IdObliviousAlgorithm):
    """Horizon-1 Id-oblivious decider for :class:`FractionalColouringProperty`.

    Reject iff my colour set is malformed (wrong size, out of palette) or
    shares a colour with a neighbour's set — both visible at radius 1.
    """

    def __init__(self, b: int = 2, a: Optional[int] = None) -> None:
        super().__init__(radius=1, name=f"fractional-colouring-decider(a={a},b={b})")
        self.a = a
        self.b = b

    def evaluate(self, view: Neighbourhood) -> Verdict:
        mine = _as_colour_set(view.center_label())
        if mine is None or len(mine) != self.b:
            return NO
        if self.a is not None and not all(0 <= c < self.a for c in mine):
            return NO
        mine_set = set(mine)
        for u in view.nodes_at_distance(1):
            theirs = _as_colour_set(view.label_of(u))
            if theirs is None or mine_set.intersection(theirs):
                return NO
        return YES


def fractional_colouring(graph: LabelledGraph, b: int = 2) -> LabelledGraph:
    """Decorate ``graph`` with a valid fractional colouring (sorted int tuples).

    Derived from a greedy proper colouring: colour ``c`` becomes the block
    ``(b*c, ..., b*c + b - 1)``, so distinct greedy colours map to disjoint
    sets and the result is a valid ``(b * (maxdeg+1)) : b`` colouring.
    """
    greedy = greedy_colouring(graph)
    return graph.with_labels(
        {v: tuple(range(b * c, b * c + b)) for v, c in greedy.labels().items()}
    )
