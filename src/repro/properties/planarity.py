"""Planarity: a global graph property used as a *negative* example for locality.

"(G, x) ∈ P if G is a planar graph (and x is arbitrary)" (Section 1.2).
Planarity is a labelled graph property but it is *not* locally decidable
with any constant horizon: a K5 subdivision can be spread arbitrarily far
apart, so no constant-radius view can ever be sure the graph is planar while
single nodes also cannot safely reject.  The property is included here

* to exercise the property interface on a global, hereditary property,
* to provide instances for the Id-oblivious simulation benchmark, and
* to demonstrate (in tests) how :mod:`repro.analysis.coverage` refutes
  candidate constant-horizon deciders for it.

The membership test delegates to :func:`networkx.check_planarity`.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx

from ..decision.property import Property
from ..graphs.generators import complete_graph, cycle_graph, grid_graph, random_tree
from ..graphs.labelled_graph import LabelledGraph

__all__ = ["PlanarityProperty"]


class PlanarityProperty(Property):
    """The property "the underlying graph is planar" (labels ignored)."""

    name = "planarity"

    def contains(self, graph: LabelledGraph) -> bool:
        is_planar, _ = nx.check_planarity(graph.to_networkx())
        return bool(is_planar)

    def yes_instances(self) -> Iterator[LabelledGraph]:
        yield cycle_graph(8)
        yield grid_graph(3, 4)
        yield random_tree(10, seed=1)
        yield complete_graph(4)

    def no_instances(self) -> Iterator[LabelledGraph]:
        yield complete_graph(5)
        yield complete_graph(6)
        # K_{3,3}
        left = [f"l{i}" for i in range(3)]
        right = [f"r{i}" for i in range(3)]
        yield LabelledGraph(left + right, [(u, v) for u in left for v in right])
