"""Proper k-colouring: the paper's first example of a labelled graph property.

"(G, x) ∈ P if x is a proper 3-colouring of G" (Section 1.2).  Proper
colouring is the textbook member of ``LD*``: a node only needs to compare
its own colour with its neighbours' colours, which requires horizon 1 and no
identifiers at all.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..decision.property import Property
from ..graphs.generators import cycle_graph, path_graph
from ..graphs.labelled_graph import LabelledGraph
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict

__all__ = ["ProperColouringProperty", "ProperColouringDecider", "greedy_colouring"]


class ProperColouringProperty(Property):
    """The property "the labels form a proper colouring with at most k colours".

    A label is interpreted as a colour; ``None`` labels are never proper.
    With ``k = None`` any number of colours is allowed (only the "proper"
    part is checked).
    """

    def __init__(self, k: Optional[int] = 3) -> None:
        self.k = k
        self.name = f"proper-{k}-colouring" if k is not None else "proper-colouring"

    def contains(self, graph: LabelledGraph) -> bool:
        labels = graph.labels()
        if any(lab is None for lab in labels.values()):
            return False
        if self.k is not None and len(set(labels.values())) > self.k:
            return False
        return all(labels[u] != labels[v] for (u, v) in graph.edges())

    def yes_instances(self) -> Iterator[LabelledGraph]:
        yield cycle_graph(4).with_labels({i: i % 2 for i in range(4)})
        yield cycle_graph(6).with_labels({i: i % 2 for i in range(6)})
        yield path_graph(5).with_labels({i: i % 2 for i in range(5)})
        yield cycle_graph(5).with_labels({0: 0, 1: 1, 2: 0, 3: 1, 4: 2})

    def no_instances(self) -> Iterator[LabelledGraph]:
        yield cycle_graph(4).with_labels({i: 0 for i in range(4)})
        yield cycle_graph(5).with_labels({i: i % 2 for i in range(5)})  # odd cycle, 2 colours
        yield path_graph(3).with_labels({0: 1, 1: 1, 2: 0})


class ProperColouringDecider(IdObliviousAlgorithm):
    """Horizon-1 Id-oblivious decider: reject iff my colour clashes with a neighbour (or is missing).

    Note that the *number of colours* cannot be bounded by a horizon-1 local
    algorithm in general (a node only sees its own neighbourhood); for
    ``k``-colourings where colours are required to come from ``{0,...,k-1}``
    the decider also rejects out-of-range colours, which makes it a correct
    decider for :class:`ProperColouringProperty` with that colour-set
    convention.
    """

    def __init__(self, k: Optional[int] = 3) -> None:
        super().__init__(radius=1, name=f"colouring-decider(k={k})")
        self.k = k

    def evaluate(self, view: Neighbourhood) -> Verdict:
        mine = view.center_label()
        if mine is None:
            return NO
        if self.k is not None and isinstance(mine, int) and not 0 <= mine < self.k:
            return NO
        for u in view.nodes_at_distance(1):
            if view.label_of(u) == mine:
                return NO
        return YES


def greedy_colouring(graph: LabelledGraph) -> LabelledGraph:
    """Return a copy of the graph whose labels are a greedy proper colouring.

    Used by tests and examples to produce yes-instances on arbitrary
    topologies; the number of colours is at most max-degree + 1.
    """
    colours = {}
    for v in graph.nodes():
        used = {colours[u] for u in graph.neighbours(v) if u in colours}
        colour = 0
        while colour in used:
            colour += 1
        colours[v] = colour
    return graph.with_labels(colours)
