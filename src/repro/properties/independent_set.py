"""Maximal independent set (MIS): the paper's second example property.

"(G, x) ∈ P if the nodes with x(v) = 1 form a maximal independent set in G"
(Section 1.2).  Membership is locally checkable with horizon 1 and no
identifiers: a selected node rejects if it has a selected neighbour
(independence), and an unselected node rejects if none of its neighbours is
selected (maximality).
"""

from __future__ import annotations

from typing import Iterator

from ..decision.property import Property
from ..graphs.generators import cycle_graph, path_graph, star_graph
from ..graphs.labelled_graph import LabelledGraph
from ..graphs.neighbourhood import Neighbourhood
from ..local_model.algorithm import IdObliviousAlgorithm
from ..local_model.outputs import NO, YES, Verdict

__all__ = ["MaximalIndependentSetProperty", "MaximalIndependentSetDecider", "greedy_mis"]

#: Label of selected nodes.
IN_SET = 1
#: Label of unselected nodes.
OUT_SET = 0


class MaximalIndependentSetProperty(Property):
    """The property "nodes labelled 1 form a maximal independent set"."""

    name = "maximal-independent-set"

    def contains(self, graph: LabelledGraph) -> bool:
        labels = graph.labels()
        if any(lab not in (IN_SET, OUT_SET) for lab in labels.values()):
            return False
        selected = {v for v, lab in labels.items() if lab == IN_SET}
        # Independence.
        for (u, v) in graph.edges():
            if u in selected and v in selected:
                return False
        # Maximality: every unselected node has a selected neighbour.
        for v in graph.nodes():
            if v not in selected and not any(u in selected for u in graph.neighbours(v)):
                return False
        return True

    def yes_instances(self) -> Iterator[LabelledGraph]:
        yield cycle_graph(6).with_labels({i: IN_SET if i % 2 == 0 else OUT_SET for i in range(6)})
        yield path_graph(5).with_labels({0: IN_SET, 1: OUT_SET, 2: IN_SET, 3: OUT_SET, 4: IN_SET})
        yield star_graph(4).with_labels({0: IN_SET, 1: OUT_SET, 2: OUT_SET, 3: OUT_SET, 4: OUT_SET})
        yield star_graph(4).with_labels({0: OUT_SET, 1: IN_SET, 2: IN_SET, 3: IN_SET, 4: IN_SET})

    def no_instances(self) -> Iterator[LabelledGraph]:
        # Not independent.
        yield path_graph(3).with_labels({0: IN_SET, 1: IN_SET, 2: OUT_SET})
        # Not maximal.
        yield path_graph(4).with_labels({0: IN_SET, 1: OUT_SET, 2: OUT_SET, 3: OUT_SET})
        # Bad label value.
        yield path_graph(2).with_labels({0: 2, 1: OUT_SET})


class MaximalIndependentSetDecider(IdObliviousAlgorithm):
    """Horizon-1 Id-oblivious decider for MIS membership."""

    def __init__(self) -> None:
        super().__init__(radius=1, name="mis-decider")

    def evaluate(self, view: Neighbourhood) -> Verdict:
        mine = view.center_label()
        if mine not in (IN_SET, OUT_SET):
            return NO
        neighbour_labels = [view.label_of(u) for u in view.nodes_at_distance(1)]
        if mine == IN_SET:
            return NO if IN_SET in neighbour_labels else YES
        return YES if IN_SET in neighbour_labels else NO


def greedy_mis(graph: LabelledGraph) -> LabelledGraph:
    """Return a copy of the graph labelled with a greedily computed maximal independent set."""
    selected = set()
    for v in graph.nodes():
        if not any(u in selected for u in graph.neighbours(v)):
            selected.add(v)
    return graph.with_labels({v: IN_SET if v in selected else OUT_SET for v in graph.nodes()})
