"""The property, decider-construction and identifier-regime axes.

Each :class:`PropertyAxis` knows how to decorate a bare topology from the
family axis into labelled yes/no instances (``yes_instance`` /
``no_instance``; either may return ``None`` when the topology admits no
such instance — a single node has no improper colouring), which property
object scores ground truth, and which decider constructions compete on it.

A :class:`DeciderConstruction` is one way of building a decider for the
property: the ``honest`` construction is the property's canonical correct
decider, while ``trap`` constructions are the identifier-dependent
candidates from :mod:`repro.adversary.candidates`, wrong only in an
exponentially small corner of the assignment space — their cells expect
the hunt to *find* that corner (``expect_correct=False``).

An :class:`IdRegime` decides how identifier assignments are exercised:

* ``one-based`` — the paper's positive-identifier convention (canonical
  1-based sequential plus random injective draws from ``{1..2n}``);
* ``bounded`` — model (B): random legal assignments under the default
  bound plus the adversarial largest-identifiers assignment;
* ``adversarial`` — the cell becomes a ``search`` scenario routed through
  :func:`repro.adversary.search.find_counterexample`, hunting the
  identifier pool ``{0..4n-1}`` for a defeating assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..adversary.candidates import LazyGuardColouringDecider, ParityAuditMISDecider
from ..campaign.scenarios import one_based_assignments
from ..campaign.spec import ScenarioSpec, ScenarioWorkload
from ..decision.property import InstanceFamily, Property
from ..graphs.identifiers import BoundedIdentifierSpace, default_bound
from ..graphs.labelled_graph import LabelledGraph
from ..properties.colouring import ProperColouringDecider, ProperColouringProperty, greedy_colouring
from ..properties.hereditary import HereditaryProperty
from ..properties.independent_set import (
    MaximalIndependentSetDecider,
    MaximalIndependentSetProperty,
    OUT_SET,
    greedy_mis,
)
from ..properties.forests import (
    SpanningForestCertificateDecider,
    SpanningForestCertificateProperty,
    bfs_layer_certificate,
)
from ..properties.fractional import (
    FractionalColouringDecider,
    FractionalColouringProperty,
    fractional_colouring,
)
from ..properties.matching import MaximalMatchingDecider, MaximalMatchingProperty, greedy_matching
from ..properties.paths import RegularPathProperty
from .families import PATH_SHAPED

__all__ = [
    "DeciderConstruction",
    "PropertyAxis",
    "IdRegime",
    "bundled_properties",
    "bundled_regimes",
    "property_names",
    "regime_names",
    "get_property_axis",
    "get_regime",
]


@dataclass(frozen=True)
class DeciderConstruction:
    """One way of constructing a decider for a property axis.

    ``make(prop, family)`` receives the scoring property and the
    materialised instance family, so identifier-dependent traps can size
    their thresholds to the instances actually generated.  ``expect_defeat``
    marks trap constructions (their search cells expect a counterexample);
    ``trap_families`` whitelists the graph families a trap is crossed with
    (empty = the construction applies to every compatible family).
    """

    name: str
    make: Callable[[Property, InstanceFamily], Any]
    expect_defeat: bool = False
    trap_families: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PropertyAxis:
    """One value of the property axis: scoring property + instance decoration.

    ``requires_tags`` restricts the axis to families carrying every listed
    tag; ``only_families`` (when non-empty) whitelists family names
    directly, for axes whose related-work grounding targets a specific
    family contrast rather than a structural tag (e.g. the spanning-forest
    certificates of Nelson-Yu on dense-vs-degenerate families).
    """

    name: str
    title: str
    make_property: Callable[[], Property]
    yes_instance: Callable[[LabelledGraph], Optional[LabelledGraph]]
    no_instance: Callable[[LabelledGraph], Optional[LabelledGraph]]
    constructions: Tuple[DeciderConstruction, ...]
    requires_tags: FrozenSet[str] = frozenset()
    only_families: Tuple[str, ...] = ()

    def supports(self, family) -> bool:
        """Whether this property can decorate the family's topologies."""
        if self.only_families and family.name not in self.only_families:
            return False
        return self.requires_tags <= family.tags


@dataclass(frozen=True)
class IdRegime:
    """One value of the identifier-regime axis.

    ``kind`` decides the scenario mode (``verify`` sweeps a fixed
    assignment pool; ``search`` hunts for a defeating assignment through
    :func:`~repro.adversary.search.find_counterexample`); ``configure``
    installs the regime's assignment machinery on the materialised
    workload.
    """

    name: str
    title: str
    kind: str  # "verify" | "search"
    configure: Callable[[ScenarioWorkload, ScenarioSpec], None]


# ---------------------------------------------------------------------- #
# Instance decoration per property
# ---------------------------------------------------------------------- #


def _monochromatic(graph: LabelledGraph) -> Optional[LabelledGraph]:
    """All-same-colour labelling: improper iff the graph has an edge."""
    if graph.num_edges() == 0:
        return None
    return graph.with_labels({v: 0 for v in graph.nodes()})


def _empty_selection(graph: LabelledGraph) -> LabelledGraph:
    """All-OUT labelling: the empty set is never a maximal independent set."""
    return graph.with_labels({v: OUT_SET for v in graph.nodes()})


def _all_unmatched(graph: LabelledGraph) -> Optional[LabelledGraph]:
    """Unlabelled graph: every edge violates matching maximality."""
    if graph.num_edges() == 0:
        return None
    return graph.with_labels({v: None for v in graph.nodes()})


_PATH_ALPHABET = ("a", "b")
_PATH_FORBIDDEN = (("b", "b"),)


def _alternating_word(graph: LabelledGraph) -> LabelledGraph:
    """Label a path-shaped graph ``a, b, a, b, ...`` in node order (no ``bb`` factor)."""
    return graph.with_labels(
        {v: _PATH_ALPHABET[i % 2] for i, v in enumerate(graph.nodes())}
    )


def _forbidden_word(graph: LabelledGraph) -> LabelledGraph:
    """A no-instance word: a ``bb`` factor when possible, else an out-of-alphabet label."""
    if graph.num_nodes() >= 2:
        return graph.with_labels({v: "b" for v in graph.nodes()})
    return graph.with_labels({v: "z" for v in graph.nodes()})


# ---------------------------------------------------------------------- #
# Decider constructions
# ---------------------------------------------------------------------- #


def _colouring_decider(prop: Property, family: InstanceFamily) -> ProperColouringDecider:
    return ProperColouringDecider(None)


def _lazy_guard_trap(prop: Property, family: InstanceFamily) -> LazyGuardColouringDecider:
    # Colour universe: everything the materialised yes-instances use (the
    # trap must accept them all); guard bound sized to the smallest
    # no-instance so a defeating all-non-guard assignment exists at every
    # rung of the ladder (pool 4n keeps >= n identifiers above the bound).
    colours = 1 + max(
        (lab for g in family.yes for lab in g.labels().values() if isinstance(lab, int)),
        default=0,
    )
    smallest_no = min((g.num_nodes() for g in family.no), default=1)
    return LazyGuardColouringDecider(max(colours, 1), guard_bound=2 * smallest_no)


def _mis_decider(prop: Property, family: InstanceFamily) -> MaximalIndependentSetDecider:
    return MaximalIndependentSetDecider()


def _parity_audit_trap(prop: Property, family: InstanceFamily) -> ParityAuditMISDecider:
    return ParityAuditMISDecider()


def _matching_decider(prop: Property, family: InstanceFamily) -> MaximalMatchingDecider:
    return MaximalMatchingDecider()


def _path_property() -> RegularPathProperty:
    return RegularPathProperty(
        _PATH_ALPHABET, _PATH_FORBIDDEN, name="no-bb-path-language"
    )


def _path_decider(prop: Property, family: InstanceFamily):
    return prop.decider()


def _hereditary_colouring() -> HereditaryProperty:
    return HereditaryProperty(ProperColouringProperty(None))


def _fractional_property() -> FractionalColouringProperty:
    return FractionalColouringProperty(b=2)


def _fractional_decider(prop: Property, family: InstanceFamily) -> FractionalColouringDecider:
    return FractionalColouringDecider(b=2)


def _fractional_yes(graph: LabelledGraph) -> LabelledGraph:
    return fractional_colouring(graph, b=2)


def _fractional_no(graph: LabelledGraph) -> Optional[LabelledGraph]:
    # Everyone shares the set (0, 1): improper iff the graph has an edge.
    if graph.num_edges() == 0:
        return None
    return graph.with_labels({v: (0, 1) for v in graph.nodes()})


def _forest_decider(prop: Property, family: InstanceFamily) -> SpanningForestCertificateDecider:
    return SpanningForestCertificateDecider()


def _forest_no(graph: LabelledGraph) -> LabelledGraph:
    # All-ones layering: the minimum-layer node of each component has no
    # neighbour one layer below, so the certificate is always invalid.
    return graph.with_labels({v: 1 for v in graph.nodes()})


# ---------------------------------------------------------------------- #
# Identifier regimes
# ---------------------------------------------------------------------- #


def _configure_one_based(workload: ScenarioWorkload, spec: ScenarioSpec) -> None:
    workload.assignments_factory = one_based_assignments(spec.samples, seed=spec.seed)


def _configure_bounded(workload: ScenarioWorkload, spec: ScenarioSpec) -> None:
    workload.id_space = BoundedIdentifierSpace(default_bound)


def _configure_adversarial(workload: ScenarioWorkload, spec: ScenarioSpec) -> None:
    workload.pool_factory = lambda g: range(4 * max(g.num_nodes(), 1))


_REGIMES: Tuple[IdRegime, ...] = (
    IdRegime(
        name="one-based",
        title="1-based injective identifiers from {1..2n} (the promise-problem convention)",
        kind="verify",
        configure=_configure_one_based,
    ),
    IdRegime(
        name="bounded",
        title="model (B): random legal + adversarial largest identifiers under f(n) = 2n + 4",
        kind="verify",
        configure=_configure_bounded,
    ),
    IdRegime(
        name="adversarial",
        title="guided hunt over the pool {0..4n-1} for a defeating assignment",
        kind="search",
        configure=_configure_adversarial,
    ),
)


# ---------------------------------------------------------------------- #
# The property bundle
# ---------------------------------------------------------------------- #

_PROPERTIES: Tuple[PropertyAxis, ...] = (
    PropertyAxis(
        name="colouring",
        title="proper colouring (greedy yes / monochromatic no)",
        make_property=lambda: ProperColouringProperty(None),
        yes_instance=greedy_colouring,
        no_instance=_monochromatic,
        constructions=(
            DeciderConstruction("honest", _colouring_decider),
            DeciderConstruction(
                "lazy-guard",
                _lazy_guard_trap,
                expect_defeat=True,
                trap_families=("cycle", "grid", "hypercube"),
            ),
        ),
    ),
    PropertyAxis(
        name="mis",
        title="maximal independent set (greedy yes / empty-selection no)",
        make_property=MaximalIndependentSetProperty,
        yes_instance=greedy_mis,
        no_instance=_empty_selection,
        constructions=(
            DeciderConstruction("honest", _mis_decider),
            DeciderConstruction(
                "parity-audit",
                _parity_audit_trap,
                expect_defeat=True,
                trap_families=("cycle", "random-regular"),
            ),
        ),
    ),
    PropertyAxis(
        name="matching",
        title="maximal matching (greedy yes / all-unmatched no)",
        make_property=MaximalMatchingProperty,
        yes_instance=greedy_matching,
        no_instance=_all_unmatched,
        constructions=(DeciderConstruction("honest", _matching_decider),),
    ),
    PropertyAxis(
        name="paths",
        title="regular path language without the factor 'bb' (alternating yes / bb or bad-letter no)",
        make_property=_path_property,
        yes_instance=_alternating_word,
        no_instance=_forbidden_word,
        constructions=(DeciderConstruction("honest", _path_decider),),
        requires_tags=frozenset({PATH_SHAPED}),
    ),
    PropertyAxis(
        name="hereditary-colouring",
        title="hereditary closure of proper colouring (FKP/FHK related-work axis)",
        make_property=_hereditary_colouring,
        yes_instance=greedy_colouring,
        no_instance=_monochromatic,
        constructions=(DeciderConstruction("honest", _colouring_decider),),
    ),
    PropertyAxis(
        name="fractional-colouring",
        title="2-set fractional colouring (Bousquet-Esperet-Pirot, arXiv:2012.01752)",
        make_property=_fractional_property,
        yes_instance=_fractional_yes,
        no_instance=_fractional_no,
        constructions=(DeciderConstruction("honest", _fractional_decider),),
    ),
    PropertyAxis(
        name="spanning-forest",
        title="BFS-layer spanning-forest certificates (Nelson-Yu, arXiv:1807.05135)",
        make_property=SpanningForestCertificateProperty,
        yes_instance=bfs_layer_certificate,
        no_instance=_forest_no,
        constructions=(DeciderConstruction("honest", _forest_decider),),
        # The Nelson-Yu bounds contrast dense against sparse/degenerate
        # families; cross the certificate axis over exactly that spectrum.
        only_families=(
            "complete",
            "star",
            "caterpillar",
            "disjoint-cycles",
            "single-node",
            "single-edge",
        ),
    ),
)

_PROPERTIES_BY_NAME: Dict[str, PropertyAxis] = {axis.name: axis for axis in _PROPERTIES}
_REGIMES_BY_NAME: Dict[str, IdRegime] = {regime.name: regime for regime in _REGIMES}


def bundled_properties() -> List[PropertyAxis]:
    """All bundled property axes, in bundle order."""
    return list(_PROPERTIES)


def bundled_regimes() -> List[IdRegime]:
    """All bundled identifier regimes, in bundle order."""
    return list(_REGIMES)


def property_names() -> List[str]:
    """Names of the bundled property axes."""
    return [axis.name for axis in _PROPERTIES]


def regime_names() -> List[str]:
    """Names of the bundled identifier regimes."""
    return [regime.name for regime in _REGIMES]


def get_property_axis(name: str) -> PropertyAxis:
    """Look a bundled property axis up by name."""
    try:
        return _PROPERTIES_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown property {name!r}; choose from {property_names()}") from None


def get_regime(name: str) -> IdRegime:
    """Look a bundled identifier regime up by name."""
    try:
        return _REGIMES_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown regime {name!r}; choose from {regime_names()}") from None
