"""Entry point for ``python -m repro.workloads``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
