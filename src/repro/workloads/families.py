"""The graph-family axis of the workload matrix.

A :class:`WorkloadFamily` wraps one generator from
:mod:`repro.graphs.generators` as a declarative axis value: a seedable
``build(size, seed)`` callable plus the structural metadata the matrix
needs for compatibility filtering (tags) and that the determinism tests
validate generated instances against (expected node count, degree bound,
connectivity).

The bundled families deliberately span the spectrum the related work says
locality results are sensitive to: the paper's own cycles/paths/grids/tori,
dense families (complete graphs), sparse and degenerate families
(caterpillars, stars), high-symmetry families (hypercubes, random regular
graphs), and pathological edge cases (disjoint unions, single-node and
single-edge graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    disjoint_cycles,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_regular_graph,
    single_edge_graph,
    single_node_graph,
    star_graph,
    torus_graph,
)
from ..graphs.labelled_graph import LabelledGraph

__all__ = ["WorkloadFamily", "bundled_families", "family_names", "get_family"]

#: Tag meaning "every instance is a simple path" (enables path-language cells).
PATH_SHAPED = "path-shaped"
#: Tag meaning "the generator draws from a seeded RNG" (seed stability is tested).
SEEDED = "seeded"
#: Tag meaning "instances may be disconnected or otherwise degenerate".
DEGENERATE = "degenerate"


@dataclass(frozen=True)
class WorkloadFamily:
    """One value of the graph-family axis.

    ``build(size, seed)`` materialises the instance for one ladder rung;
    deterministic generators ignore ``seed``.  ``expected_nodes(size)``
    (when set) and ``degree_bound(size)`` let tests validate generated
    instances without re-deriving generator internals, and ``connected``
    declares whether the generator guarantees connectivity.
    """

    name: str
    title: str
    build: Callable[[int, int], LabelledGraph]
    sizes: Tuple[int, ...]
    quick_sizes: Tuple[int, ...]
    expected_nodes: Optional[Callable[[int], int]] = None
    degree_bound: Optional[Callable[[int], int]] = None
    connected: bool = True
    tags: FrozenSet[str] = field(default_factory=frozenset)

    def ladder(self, quick: bool) -> Tuple[int, ...]:
        """The size ladder for the given mode."""
        return self.quick_sizes if quick and self.quick_sizes else self.sizes


_FAMILIES: Tuple[WorkloadFamily, ...] = (
    WorkloadFamily(
        name="cycle",
        title="cycles C_n (the paper's promise-problem topology)",
        build=lambda size, seed: cycle_graph(size),
        sizes=(8, 12, 16),
        quick_sizes=(6,),
        expected_nodes=lambda size: size,
        degree_bound=lambda size: 2,
    ),
    WorkloadFamily(
        name="path",
        title="paths P_n",
        build=lambda size, seed: path_graph(size),
        sizes=(8, 12, 16),
        quick_sizes=(6,),
        expected_nodes=lambda size: size,
        degree_bound=lambda size: 2,
        tags=frozenset({PATH_SHAPED}),
    ),
    WorkloadFamily(
        name="star",
        title="stars K_{1,size} (one hub, pendant leaves)",
        build=lambda size, seed: star_graph(size),
        sizes=(6, 10),
        quick_sizes=(4,),
        expected_nodes=lambda size: size + 1,
        degree_bound=lambda size: size,
    ),
    WorkloadFamily(
        name="complete",
        title="complete graphs K_n (dense extreme)",
        build=lambda size, seed: complete_graph(size),
        sizes=(4, 5, 6),
        quick_sizes=(4,),
        expected_nodes=lambda size: size,
        degree_bound=lambda size: size - 1,
    ),
    WorkloadFamily(
        name="grid",
        title="square grids (the Section-3 execution-table substrate)",
        build=lambda size, seed: grid_graph(size, size),
        sizes=(3, 4),
        quick_sizes=(2,),
        expected_nodes=lambda size: size * size,
        degree_bound=lambda size: 4,
    ),
    WorkloadFamily(
        name="torus",
        title="3 x size tori (the grid impostors of Section 3)",
        build=lambda size, seed: torus_graph(3, size),
        sizes=(3, 4, 5),
        quick_sizes=(3,),
        expected_nodes=lambda size: 3 * size,
        degree_bound=lambda size: 4,
    ),
    WorkloadFamily(
        name="hypercube",
        title="hypercubes Q_dim (high-symmetry, dim-regular)",
        build=lambda size, seed: hypercube_graph(size),
        sizes=(2, 3, 4),
        quick_sizes=(2,),
        expected_nodes=lambda size: 1 << size,
        degree_bound=lambda size: size,
    ),
    WorkloadFamily(
        name="random-regular",
        title="seeded random 3-regular graphs (pairing model)",
        build=lambda size, seed: random_regular_graph(size, 3, seed=seed),
        sizes=(8, 10),
        quick_sizes=(6,),
        expected_nodes=lambda size: size,
        degree_bound=lambda size: 3,
        connected=False,  # the pairing model does not guarantee connectivity
        tags=frozenset({SEEDED}),
    ),
    WorkloadFamily(
        name="caterpillar",
        title="seeded caterpillars (spine path + random pendant legs)",
        build=lambda size, seed: caterpillar_graph(size, seed=seed),
        sizes=(6, 8),
        quick_sizes=(4,),
        degree_bound=lambda size: 4,  # 2 spine neighbours + max_legs
        tags=frozenset({SEEDED}),
    ),
    WorkloadFamily(
        name="disjoint-cycles",
        title="disjoint unions of two cycles (disconnected edge case)",
        build=lambda size, seed: disjoint_cycles(2, size),
        sizes=(4, 6),
        quick_sizes=(3,),
        expected_nodes=lambda size: 2 * size,
        degree_bound=lambda size: 2,
        connected=False,
        tags=frozenset({DEGENERATE}),
    ),
    WorkloadFamily(
        name="single-node",
        title="the one-node graph (smallest legal input)",
        build=lambda size, seed: single_node_graph(),
        sizes=(1,),
        quick_sizes=(1,),
        expected_nodes=lambda size: 1,
        degree_bound=lambda size: 0,
        tags=frozenset({DEGENERATE, PATH_SHAPED}),
    ),
    WorkloadFamily(
        name="single-edge",
        title="the one-edge graph (smallest input with an edge)",
        build=lambda size, seed: single_edge_graph(),
        sizes=(2,),
        quick_sizes=(2,),
        expected_nodes=lambda size: 2,
        degree_bound=lambda size: 1,
        tags=frozenset({DEGENERATE, PATH_SHAPED}),
    ),
)

_BY_NAME: Dict[str, WorkloadFamily] = {fam.name: fam for fam in _FAMILIES}


def bundled_families() -> List[WorkloadFamily]:
    """All bundled graph families, in bundle order."""
    return list(_FAMILIES)


def family_names() -> List[str]:
    """Names of the bundled families."""
    return [fam.name for fam in _FAMILIES]


def get_family(name: str) -> WorkloadFamily:
    """Look a bundled family up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown family {name!r}; choose from {family_names()}") from None
