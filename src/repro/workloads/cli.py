"""``python -m repro.workloads`` — expand, sample and run the workload matrix.

Examples
--------

List the expanded cells (the count in the title is what CI asserts on)::

    PYTHONPATH=src python -m repro.workloads --list

Count a parameterised million-cell cross without building a single spec::

    PYTHONPATH=src python -m repro.workloads --list --count-only \\
        --size-scale 1 --size-scale 2 --sample-count 2 --sample-count 3 \\
        --replicas 1250

Print the deterministic JSON expansion (byte-identical for one seed), or
stream it as NDJSON — one line per cell, O(1) memory at any scale::

    PYTHONPATH=src python -m repro.workloads --expand
    PYTHONPATH=src python -m repro.workloads --expand --ndjson --max-cells 1000

Show the axes themselves::

    PYTHONPATH=src python -m repro.workloads --families
    PYTHONPATH=src python -m repro.workloads --properties

Run the quick matrix on a 2-worker ParallelEngine against a persistent
verdict store, then prove the warm re-run replays from disk::

    PYTHONPATH=src python -m repro.workloads --run --quick \\
        --engine parallel --workers 2 --store /tmp/verdicts
    PYTHONPATH=src python -m repro.workloads --run --quick \\
        --engine parallel --workers 2 --store /tmp/verdicts --min-replayed 0.9

Run a budgeted sweep: a seeded stratified sample of 50 cells (quota per
family x property stratum), logging each result incrementally so a killed
sweep resumes from the log::

    PYTHONPATH=src python -m repro.workloads --run --quick \\
        --sample 50 --strata family,property --log /tmp/matrix.jsonl

Spend the budget where a previous report says it matters (flipped,
near-defeat or never-measured cells first), replaying the rest::

    PYTHONPATH=src python -m repro.workloads --run --quick --sample 50 \\
        --importance-from benchmarks/BENCH_workload_matrix.json

Resume a previous matrix report, re-running only missing/stale cells::

    PYTHONPATH=src python -m repro.workloads --run \\
        --resume benchmarks/BENCH_workload_matrix.json --store /tmp/verdicts

The process exits non-zero when any cell misbehaves, so CI gates on matrix
sweeps directly (exactly like ``python -m repro.campaign``).
"""

from __future__ import annotations

import argparse
import itertools
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..analysis.reporting import format_table
from ..campaign.runner import replay_summary, resume_campaign, run_campaign, write_report
from ..campaign.spec import ScenarioSpec
from ..obs import trace
from .axes import bundled_properties, bundled_regimes, property_names, regime_names
from .families import bundled_families, family_names
from .matrix import WorkloadMatrix, expand_json, expand_ndjson
from .sampling import STRATUM_AXES, SamplePlan, importance_sample, stratified_sample

__all__ = ["main", "build_parser", "DEFAULT_MATRIX_REPORT"]

#: Default location of matrix sweep reports, next to the benchmark records.
DEFAULT_MATRIX_REPORT = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_workload_matrix.json"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Expand, sample and run the (family x property x decider x id-regime) workload matrix.",
    )
    parser.add_argument(
        "cells",
        nargs="*",
        metavar="CELL",
        help="exact cell names to restrict to (default: every cell the filters admit)",
    )
    parser.add_argument("--list", action="store_true", help="list the expanded cells and exit")
    parser.add_argument(
        "--count-only",
        action="store_true",
        help="with --list: print only the cell count, computed without building any spec",
    )
    parser.add_argument(
        "--expand",
        action="store_true",
        help="print the deterministic JSON expansion (per-cell digests included) and exit",
    )
    parser.add_argument(
        "--ndjson",
        action="store_true",
        help="with --expand: stream one compact JSON line per cell instead of one array "
        "(O(1) memory on million-cell crosses)",
    )
    parser.add_argument(
        "--families", action="store_true", help="list the graph-family axis and exit"
    )
    parser.add_argument(
        "--properties",
        action="store_true",
        help="list the property axis (with decider constructions) and exit",
    )
    parser.add_argument("--run", action="store_true", help="run the selected cells as a campaign")
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help=f"include only this graph family (repeatable). Known: {', '.join(family_names())}",
    )
    parser.add_argument(
        "--exclude-family",
        action="append",
        default=[],
        metavar="NAME",
        help="drop this graph family after inclusion (repeatable)",
    )
    parser.add_argument(
        "--property",
        action="append",
        default=None,
        metavar="NAME",
        dest="property_filter",
        help=f"include only this property (repeatable). Known: {', '.join(property_names())}",
    )
    parser.add_argument(
        "--regime",
        action="append",
        default=None,
        metavar="NAME",
        help=f"include only this identifier regime (repeatable). Known: {', '.join(regime_names())}",
    )
    parser.add_argument(
        "--construction",
        action="append",
        default=None,
        metavar="NAME",
        help="include only this decider construction (repeatable), e.g. honest / lazy-guard",
    )
    parser.add_argument(
        "--kind",
        action="append",
        default=None,
        choices=["verify", "search"],
        help="include only cells of this scenario kind (repeatable)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="matrix seed: every cell derives its own deterministic seed from it (default: 0)",
    )
    parser.add_argument(
        "--size-scale",
        action="append",
        type=int,
        default=None,
        metavar="S",
        help="variant axis: multiply every family's size ladder by S (repeatable; default: 1)",
    )
    parser.add_argument(
        "--sample-count",
        action="append",
        type=int,
        default=None,
        metavar="K",
        help="variant axis: identifier assignments sampled per instance (repeatable; default: 3)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="variant axis: seed replicas per cell (default: 1)",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="hard cap on the number of cells listed/expanded/run (streaming prefix)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="BUDGET",
        help="with --run: sweep only a budgeted sample of the selected cells",
    )
    parser.add_argument(
        "--strata",
        default="family,property",
        metavar="AXES",
        help="comma-separated stratification axes for --sample "
        f"(default: family,property; known: {', '.join(STRATUM_AXES)})",
    )
    parser.add_argument(
        "--importance-from",
        default=None,
        metavar="REPORT",
        help="with --sample: importance-directed sampling against this prior report "
        "(flipped / near-defeat / never-measured cells first) instead of stratified",
    )
    parser.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the sampling draw itself (default: 0; the matrix seed is --seed)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        metavar="PATH",
        help="sample-plan file: loaded (and verified) when it exists, otherwise the "
        "computed plan is saved there — pins one selection across re-invocations",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["direct", "synchronous", "cached", "parallel"],
        help="execution backend override (default: each cell's declared backend)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel backend (implies --engine parallel)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="quick ladders and reduced search budgets"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent verdict store directory shared by every cell of the sweep",
    )
    parser.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="append-only JSONL result log: each completed cell is written immediately, "
        "and a re-invocation reuses logged results (crash-tolerant sweeps)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="REPORT",
        help="merge into an existing matrix report, re-running only missing/stale cells",
    )
    parser.add_argument(
        "--min-replayed",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail unless at least this fraction of jobs was replayed from the store "
        "(requires --store); used by CI to prove warm matrix sweeps",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=f"where to write the JSON report (default: {DEFAULT_MATRIX_REPORT})",
    )
    parser.add_argument(
        "--no-report", action="store_true", help="skip writing the JSON report file"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="with --run: write a structured JSONL span trace of the sweep to "
        "PATH (inspect it with `python -m repro.obs report PATH`)",
    )
    return parser


def _list_families() -> str:
    rows = [
        [
            fam.name,
            "x".join(str(s) for s in fam.sizes),
            "x".join(str(s) for s in fam.quick_sizes),
            "yes" if fam.connected else "no",
            ",".join(sorted(fam.tags)) or "-",
            fam.title,
        ]
        for fam in bundled_families()
    ]
    return format_table(
        ["family", "sizes", "quick", "connected", "tags", "title"],
        rows,
        title=f"workload graph families ({len(rows)})",
    )


def _list_properties() -> str:
    rows = []
    for axis in bundled_properties():
        for construction in axis.constructions:
            rows.append(
                [
                    axis.name,
                    construction.name,
                    "trap" if construction.expect_defeat else "honest",
                    ",".join(construction.trap_families) or "-",
                    ",".join(sorted(axis.requires_tags)) or "-",
                    axis.title,
                ]
            )
    regimes = ", ".join(f"{r.name} ({r.kind})" for r in bundled_regimes())
    table = format_table(
        ["property", "construction", "role", "trap-families", "requires-tags", "title"],
        rows,
        title=f"workload properties and decider constructions ({len(rows)})",
    )
    return f"{table}\n\nidentifier regimes: {regimes}"


def _resolve_plan(
    args: argparse.Namespace, matrix: WorkloadMatrix, filters: dict
) -> SamplePlan:
    """Load the pinned plan when present, otherwise draw one and pin it."""
    if args.plan is not None and Path(args.plan).exists():
        plan = SamplePlan.load(args.plan)
        print(f"loaded sample plan from {args.plan}: {plan.summary()}")
        return plan
    if args.importance_from is not None:
        prior = Path(args.importance_from)
        if not prior.exists():
            raise FileNotFoundError(f"--importance-from report {prior} does not exist")
        plan = importance_sample(
            matrix,
            budget=args.sample,
            prior=prior,
            seed=args.sample_seed,
            quick=args.quick,
            **filters,
        )
    else:
        strata = tuple(axis.strip() for axis in args.strata.split(",") if axis.strip())
        plan = stratified_sample(
            matrix, budget=args.sample, seed=args.sample_seed, strata=strata, **filters
        )
    print(plan.summary())
    if args.plan is not None:
        plan.save(args.plan)
        print(f"sample plan pinned to {args.plan}")
    return plan


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.families:
        print(_list_families())
        return 0
    if args.properties:
        print(_list_properties())
        return 0
    if args.min_replayed is not None and args.store is None:
        parser.error("--min-replayed requires --store")
    if args.workers is not None and args.engine is not None and args.engine != "parallel":
        parser.error("--workers requires the parallel backend (drop --engine or use --engine parallel)")
    if args.importance_from is not None and args.sample is None:
        parser.error("--importance-from requires --sample BUDGET")
    if args.sample is not None and not args.run:
        parser.error("--sample only applies to --run")
    matrix = WorkloadMatrix(
        seed=args.seed,
        size_scales=args.size_scale or (1,),
        sample_counts=args.sample_count or (3,),
        replicas=args.replicas,
    )
    filters = dict(
        families=args.family,
        properties=args.property_filter,
        regimes=args.regime,
        constructions=args.construction,
        kinds=args.kind,
        exclude_families=args.exclude_family,
    )
    named = dict(filters, names=args.cells or None)
    try:
        total = matrix.count_cells(**named)
    except KeyError as exc:
        parser.error(str(exc))
    shown = total if args.max_cells is None else min(total, args.max_cells)
    if args.list and args.count_only:
        print(shown)
        return 0
    if args.list or args.expand:
        cell_stream = matrix.iter_cells(**named)
        if args.max_cells is not None:
            cell_stream = itertools.islice(cell_stream, args.max_cells)
        if args.list:
            rows = [cell.as_row() for cell in cell_stream]
            print(
                format_table(
                    ["cell", "kind", "family", "property", "construction", "regime", "sizes"],
                    rows,
                    title=f"workload matrix: {len(rows)} expanded scenario cells (seed {args.seed})",
                )
            )
            return 0
        if args.ndjson:
            for line in expand_ndjson(cell_stream):
                print(line)
            return 0
        print(expand_json(cell_stream), end="")
        return 0
    if not args.run:
        parser.error("nothing to do: pass --list, --expand, --families, --properties or --run")
    if total == 0:
        parser.error("the filters admit no cells; see --list")
    specs: Iterator[ScenarioSpec]
    expected = shown
    if args.sample is not None:
        try:
            plan = _resolve_plan(args, matrix, filters)
        except (FileNotFoundError, ValueError) as exc:
            parser.error(str(exc))
        specs = plan.iter_specs(matrix)
        expected = len(plan.selected)
    else:
        specs = matrix.iter_scenarios(**named)
    if args.max_cells is not None:
        specs = itertools.islice(specs, args.max_cells)
        expected = min(expected, args.max_cells)
    if args.resume is not None and not Path(args.resume).exists():
        parser.error(f"--resume report {args.resume} does not exist")
    if args.trace is not None:
        trace.enable(args.trace)
    try:
        if args.resume is not None:
            resume_path = Path(args.resume)
            report, reused = resume_campaign(
                resume_path,
                scenarios=specs,
                engine=args.engine,
                workers=args.workers,
                quick=True if args.quick else None,
                store=args.store,
                log_path=args.log,
            )
            print(
                f"resumed from {resume_path}: {reused} cell(s) reused, {expected - reused} re-run"
            )
        else:
            report = run_campaign(
                specs,
                engine=args.engine,
                workers=args.workers,
                quick=args.quick,
                name=f"workload-matrix(seed={args.seed})",
                store=args.store,
                log_path=args.log,
            )
        print(report.summary_table())
        parallel_totals = report.parallel_stats()
        if parallel_totals.get("parallel_batches"):
            print(
                "parallel: {parallel_batches} batch(es), {parallel_chunks} chunk(s), "
                "{parallel_forks} fork(s), {payload_ships} payload ship(s) "
                "({payload_ship_bytes} bytes), {coalesced_batches} coalesced".format(**parallel_totals)
            )
        if not args.no_report:
            default = Path(args.resume) if args.resume is not None else DEFAULT_MATRIX_REPORT
            path = write_report(report, args.output if args.output is not None else default)
            print(f"report written to {path}")
        ok = report.ok
        if args.min_replayed is not None:
            replayed, total_jobs, fraction, resumed = replay_summary(report)
            print(
                f"store replay: {replayed}/{total_jobs} jobs "
                f"({fraction:.1%}, floor {args.min_replayed:.1%}"
                + (f"; {resumed} resumed cell(s) excluded)" if resumed else ")")
            )
            if fraction < args.min_replayed:
                print(
                    f"FAIL: only {fraction:.1%} of jobs replayed from the store "
                    f"(floor {args.min_replayed:.1%})"
                )
                ok = False
        print(f"workload matrix {'OK' if ok else 'FAILED'}")
        return 0 if ok else 1
    finally:
        if args.trace is not None:
            trace.disable()
            print(f"trace written to {args.trace}")


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
