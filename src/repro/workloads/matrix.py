"""The workload matrix: cross the axes into materialised scenario cells.

A :class:`WorkloadMatrix` crosses **graph families** x **properties** x
**decider constructions** x **identifier regimes** into
:class:`~repro.campaign.spec.ScenarioSpec` cells that run through the
ordinary campaign machinery (:func:`~repro.campaign.runner.run_campaign` /
:func:`~repro.campaign.runner.resume_campaign`), so the
:class:`~repro.engine.parallel.ParallelEngine` shards cells and a
:class:`~repro.engine.persistent.VerdictStore` replays them exactly like
the hand-written bundle.  Compatibility is declarative: a property axis
names the family tags it requires, and trap constructions whitelist the
families they are hunted on.

Determinism: every cell derives its sampling/search seed from the matrix
seed and its own name (SHA-256, platform independent), and the expansion
(:func:`expand_records` / :func:`expand_json`) contains no timestamps, so
the same matrix seed always produces a byte-identical expansion and the
same per-cell spec digests — the property the resumable sweeps and the
worker-count determinism tests are built on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaign.spec import ScenarioSpec, ScenarioWorkload
from ..decision.property import InstanceFamily
from .axes import (
    DeciderConstruction,
    IdRegime,
    PropertyAxis,
    bundled_properties,
    bundled_regimes,
)
from .families import WorkloadFamily, bundled_families

__all__ = [
    "WorkloadCell",
    "WorkloadMatrix",
    "default_matrix",
    "expand_records",
    "expand_json",
]

#: Offset between the seeds of consecutive ladder rungs of one cell.
_RUNG_SEED_STRIDE = 7919

#: Per-instance search budgets: traps need room to climb, honest deciders
#: are Id-oblivious and settle in one canonical evaluation anyway.
_TRAP_BUDGET, _TRAP_QUICK_BUDGET = 600, 300
_HONEST_BUDGET, _HONEST_QUICK_BUDGET = 64, 32


def cell_seed(matrix_seed: int, name: str) -> int:
    """Derive one cell's deterministic seed from the matrix seed and cell name."""
    token = hashlib.sha256(f"{matrix_seed}|{name}".encode("utf-8")).digest()
    return int.from_bytes(token[:4], "big") & 0x7FFFFFFF


def _make_build(
    family: WorkloadFamily,
    axis: PropertyAxis,
    construction: DeciderConstruction,
    regime: IdRegime,
) -> Callable[[ScenarioSpec, Tuple[int, ...]], ScenarioWorkload]:
    """Build callable for one cell: decorate the family's ladder into a workload."""

    def build(spec: ScenarioSpec, sizes: Tuple[int, ...]) -> ScenarioWorkload:
        yes, no = [], []
        for idx, size in enumerate(sizes):
            graph = family.build(size, spec.seed + _RUNG_SEED_STRIDE * idx)
            yes_graph = axis.yes_instance(graph)
            if yes_graph is not None:
                yes.append(yes_graph)
            no_graph = axis.no_instance(graph)
            if no_graph is not None:
                no.append(no_graph)
        instances = InstanceFamily(
            name=f"{family.name}:{axis.name}(sizes={sizes})",
            yes_instances=yes,
            no_instances=no,
            description=f"{axis.title} on {family.title}",
        )
        prop = axis.make_property()
        workload = ScenarioWorkload(
            family=instances,
            decider=construction.make(prop, instances),
            prop=prop,
        )
        regime.configure(workload, spec)
        return workload

    return build


@dataclass(frozen=True)
class WorkloadCell:
    """One expanded cell of the matrix: the four axis values plus the spec."""

    family: WorkloadFamily
    axis: PropertyAxis
    construction: DeciderConstruction
    regime: IdRegime
    spec: ScenarioSpec

    @property
    def name(self) -> str:
        return self.spec.name

    def digest(self, quick: bool) -> str:
        """The cell's deterministic workload digest (see ``ScenarioSpec.digest``)."""
        return self.spec.digest(quick)

    def as_record(self) -> Dict[str, object]:
        """JSON-ready record of the cell (the ``--expand`` output row)."""
        return {
            "name": self.name,
            "family": self.family.name,
            "property": self.axis.name,
            "construction": self.construction.name,
            "regime": self.regime.name,
            "kind": self.spec.kind,
            "sizes": list(self.spec.sizes),
            "quick_sizes": list(self.spec.quick_sizes),
            "seed": self.spec.seed,
            "expect_correct": self.spec.expect_correct,
            "digest_full": self.digest(False),
            "digest_quick": self.digest(True),
        }

    def as_row(self) -> List[str]:
        """The ``--list`` table row."""
        return [
            self.name,
            self.spec.kind,
            self.family.name,
            self.axis.name,
            self.construction.name,
            self.regime.name,
            "x".join(str(s) for s in self.spec.sizes) or "-",
        ]


class WorkloadMatrix:
    """Declarative cross of the four axes with per-axis include/exclude filters."""

    def __init__(
        self,
        families: Optional[Sequence[WorkloadFamily]] = None,
        properties: Optional[Sequence[PropertyAxis]] = None,
        regimes: Optional[Sequence[IdRegime]] = None,
        seed: int = 0,
    ) -> None:
        self.families = list(families) if families is not None else bundled_families()
        self.properties = list(properties) if properties is not None else bundled_properties()
        self.regimes = list(regimes) if regimes is not None else bundled_regimes()
        self.seed = seed

    def _spec_for(
        self,
        family: WorkloadFamily,
        axis: PropertyAxis,
        construction: DeciderConstruction,
        regime: IdRegime,
    ) -> ScenarioSpec:
        name = f"mx:{family.name}:{axis.name}:{construction.name}:{regime.name}"
        trap = construction.expect_defeat
        return ScenarioSpec(
            name=name,
            title=f"{axis.title} | {family.title} | {regime.name} identifiers",
            section="matrix",
            kind=regime.kind,
            graph_family=family.name,
            property_name=axis.name,
            decider_name=construction.name,
            build=_make_build(family, axis, construction, regime),
            sizes=family.sizes,
            quick_sizes=family.quick_sizes,
            samples=3,
            seed=cell_seed(self.seed, name),
            strategy="hill-climb",
            max_evaluations=_TRAP_BUDGET if trap else _HONEST_BUDGET,
            quick_max_evaluations=_TRAP_QUICK_BUDGET if trap else _HONEST_QUICK_BUDGET,
            batch_size=16,
            engine="cached",
            expect_correct=not trap,
            description=f"matrix cell: {family.name} x {axis.name} x {construction.name} x {regime.name}",
        )

    def cells(
        self,
        families: Optional[Sequence[str]] = None,
        properties: Optional[Sequence[str]] = None,
        regimes: Optional[Sequence[str]] = None,
        constructions: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        exclude_families: Sequence[str] = (),
        names: Optional[Sequence[str]] = None,
    ) -> List[WorkloadCell]:
        """Expand the matrix into cells, applying the per-axis filters.

        Every filter is an include-list of axis names (``None`` = no
        filter); ``exclude_families`` removes families after inclusion and
        ``names`` restricts to exact cell names (the CLI's positional
        arguments).  Unknown names in any filter raise ``KeyError`` so a
        typo cannot silently produce an empty sweep.
        """
        self._check_filter(families, {f.name for f in self.families}, "family")
        self._check_filter(exclude_families, {f.name for f in self.families}, "family")
        self._check_filter(properties, {p.name for p in self.properties}, "property")
        self._check_filter(regimes, {r.name for r in self.regimes}, "regime")
        self._check_filter(
            constructions,
            {c.name for p in self.properties for c in p.constructions},
            "construction",
        )
        out: List[WorkloadCell] = []
        for family in self.families:
            if families is not None and family.name not in families:
                continue
            if family.name in exclude_families:
                continue
            for axis in self.properties:
                if properties is not None and axis.name not in properties:
                    continue
                if not axis.supports(family):
                    continue
                for construction in axis.constructions:
                    if constructions is not None and construction.name not in constructions:
                        continue
                    for regime in self.regimes:
                        if regimes is not None and regime.name not in regimes:
                            continue
                        if construction.expect_defeat:
                            # Traps are hunted, never swept: search cells
                            # only, and only on their whitelisted families.
                            if regime.kind != "search":
                                continue
                            if family.name not in construction.trap_families:
                                continue
                        if kinds is not None and regime.kind not in kinds:
                            continue
                        cell = WorkloadCell(
                            family=family,
                            axis=axis,
                            construction=construction,
                            regime=regime,
                            spec=self._spec_for(family, axis, construction, regime),
                        )
                        if names is not None and cell.name not in names:
                            continue
                        out.append(cell)
        if names is not None:
            missing = sorted(set(names) - {cell.name for cell in out})
            if missing:
                # Distinguish a typo from a real cell the other filters
                # excluded — "unknown" would be a misleading diagnosis.
                every_name = {cell.name for cell in self.cells()}
                unknown = sorted(set(missing) - every_name)
                if unknown:
                    raise KeyError(f"unknown matrix cell(s) {unknown}; see --list")
                raise KeyError(
                    f"matrix cell(s) {missing} exist but are excluded by the active filters"
                )
        return out

    def scenarios(self, **filters) -> List[ScenarioSpec]:
        """The expanded cells as plain campaign scenario specs."""
        return [cell.spec for cell in self.cells(**filters)]

    @staticmethod
    def _check_filter(chosen: Optional[Sequence[str]], known: set, axis: str) -> None:
        unknown = sorted(set(chosen or ()) - known)
        if unknown:
            raise KeyError(f"unknown {axis} name(s) {unknown}; choose from {sorted(known)}")


def default_matrix(seed: int = 0) -> WorkloadMatrix:
    """The bundled matrix: all bundled families x properties x regimes."""
    return WorkloadMatrix(seed=seed)


def expand_records(cells: Sequence[WorkloadCell]) -> List[Dict[str, object]]:
    """JSON-ready records for a list of cells (the ``--expand`` payload)."""
    return [cell.as_record() for cell in cells]


def expand_json(cells: Sequence[WorkloadCell]) -> str:
    """Deterministic JSON expansion: same matrix seed, byte-identical output."""
    return json.dumps(expand_records(cells), indent=2, sort_keys=True) + "\n"
