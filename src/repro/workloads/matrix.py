"""The workload matrix: a streaming cross of the axes into scenario cells.

A :class:`WorkloadMatrix` crosses **graph families** x **properties** x
**decider constructions** x **identifier regimes** into
:class:`~repro.campaign.spec.ScenarioSpec` cells that run through the
ordinary campaign machinery (:func:`~repro.campaign.runner.run_campaign` /
:func:`~repro.campaign.runner.resume_campaign`), so the
:class:`~repro.engine.parallel.ParallelEngine` shards cells and a
:class:`~repro.engine.persistent.VerdictStore` replays them exactly like
the hand-written bundle.  Compatibility is declarative: a property axis
names the family tags it requires, and trap constructions whitelist the
families they are hunted on.

**Streaming.**  :meth:`WorkloadMatrix.iter_cells` is the primitive: a lazy
generator over the cross in a deterministic total order (families, then
properties, then constructions, then regimes, then the variant ladder)
with O(1) memory — no list of cells ever exists.  :meth:`WorkloadMatrix.cells`
is a thin materialising wrapper kept for the small default matrix, and
:meth:`WorkloadMatrix.count_cells` counts the cross without constructing a
single spec.  The optional variant axes (``size_scales`` x
``sample_counts`` x ``replicas``) multiply the base cross to arbitrary
scale — past a million cells — while the default variant keeps every base
cell's name, spec and digest byte-identical to the unparameterised matrix.

Determinism: every cell derives its sampling/search seed from the matrix
seed and its own name (SHA-256, platform independent), and the expansion
(:func:`expand_records` / :func:`expand_json` / :func:`expand_ndjson`)
contains no timestamps, so the same matrix seed always produces a
byte-identical expansion and the same per-cell spec digests — the property
the resumable sweeps and the worker-count determinism tests are built on.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..campaign.spec import ScenarioSpec, ScenarioWorkload
from ..decision.property import InstanceFamily
from .axes import (
    DeciderConstruction,
    IdRegime,
    PropertyAxis,
    bundled_properties,
    bundled_regimes,
)
from .families import WorkloadFamily, bundled_families

__all__ = [
    "WorkloadCell",
    "WorkloadMatrix",
    "default_matrix",
    "expand_records",
    "expand_json",
    "expand_ndjson",
]

#: Offset between the seeds of consecutive ladder rungs of one cell.
_RUNG_SEED_STRIDE = 7919

#: Per-instance search budgets: traps need room to climb, honest deciders
#: are Id-oblivious and settle in one canonical evaluation anyway.
_TRAP_BUDGET, _TRAP_QUICK_BUDGET = 600, 300
_HONEST_BUDGET, _HONEST_QUICK_BUDGET = 64, 32


def cell_seed(matrix_seed: int, name: str) -> int:
    """Derive one cell's deterministic seed from the matrix seed and cell name."""
    token = hashlib.sha256(f"{matrix_seed}|{name}".encode("utf-8")).digest()
    return int.from_bytes(token[:4], "big") & 0x7FFFFFFF


def _make_build(
    family: WorkloadFamily,
    axis: PropertyAxis,
    construction: DeciderConstruction,
    regime: IdRegime,
) -> Callable[[ScenarioSpec, Tuple[int, ...]], ScenarioWorkload]:
    """Build callable for one cell: decorate the family's ladder into a workload."""

    def build(spec: ScenarioSpec, sizes: Tuple[int, ...]) -> ScenarioWorkload:
        yes, no = [], []
        for idx, size in enumerate(sizes):
            graph = family.build(size, spec.seed + _RUNG_SEED_STRIDE * idx)
            yes_graph = axis.yes_instance(graph)
            if yes_graph is not None:
                yes.append(yes_graph)
            no_graph = axis.no_instance(graph)
            if no_graph is not None:
                no.append(no_graph)
        instances = InstanceFamily(
            name=f"{family.name}:{axis.name}(sizes={sizes})",
            yes_instances=yes,
            no_instances=no,
            description=f"{axis.title} on {family.title}",
        )
        prop = axis.make_property()
        workload = ScenarioWorkload(
            family=instances,
            decider=construction.make(prop, instances),
            prop=prop,
        )
        regime.configure(workload, spec)
        return workload

    return build


@dataclass(frozen=True)
class WorkloadCell:
    """One expanded cell of the matrix: the four axis values plus the spec."""

    family: WorkloadFamily
    axis: PropertyAxis
    construction: DeciderConstruction
    regime: IdRegime
    spec: ScenarioSpec

    @property
    def name(self) -> str:
        return self.spec.name

    def digest(self, quick: bool) -> str:
        """The cell's deterministic workload digest (see ``ScenarioSpec.digest``)."""
        return self.spec.digest(quick)

    def as_record(self) -> Dict[str, object]:
        """JSON-ready record of the cell (the ``--expand`` output row)."""
        return {
            "name": self.name,
            "family": self.family.name,
            "property": self.axis.name,
            "construction": self.construction.name,
            "regime": self.regime.name,
            "kind": self.spec.kind,
            "sizes": list(self.spec.sizes),
            "quick_sizes": list(self.spec.quick_sizes),
            "seed": self.spec.seed,
            "expect_correct": self.spec.expect_correct,
            "digest_full": self.digest(False),
            "digest_quick": self.digest(True),
        }

    def as_row(self) -> List[str]:
        """The ``--list`` table row."""
        return [
            self.name,
            self.spec.kind,
            self.family.name,
            self.axis.name,
            self.construction.name,
            self.regime.name,
            "x".join(str(s) for s in self.spec.sizes) or "-",
        ]


#: The per-cell ``samples`` value of the unparameterised matrix; the
#: variant whose knobs all sit at their defaults keeps the historical
#: unsuffixed cell name (and therefore its digest).
_DEFAULT_SAMPLES = 3
_DEFAULT_VARIANT = (1, _DEFAULT_SAMPLES, 0)


class WorkloadMatrix:
    """Declarative cross of the four axes with per-axis include/exclude filters.

    The optional **variant axes** parameterise the cross into a size/sample
    ladder without changing the base cells:

    * ``size_scales`` — each scale ``s`` multiplies every family's size
      ladder by ``s`` (suffix ``@s{s}...``);
    * ``sample_counts`` — identifier assignments sampled per instance in
      verify cells (suffix ``...k{samples}...``);
    * ``replicas`` — seed replicas: same workload shape, independent
      derived cell seeds (suffix ``...r{replica}``).

    The variant ``(scale=1, samples=3, replica=0)`` — always present when
    the knobs are left at their defaults — carries no suffix, so the
    default matrix's cell names, specs and digests are byte-identical to
    the historical unparameterised expansion.  The cross is only ever
    *streamed* (:meth:`iter_cells`); with the variant axes it reaches
    millions of cells without a list being materialised anywhere.
    """

    def __init__(
        self,
        families: Optional[Sequence[WorkloadFamily]] = None,
        properties: Optional[Sequence[PropertyAxis]] = None,
        regimes: Optional[Sequence[IdRegime]] = None,
        seed: int = 0,
        size_scales: Sequence[int] = (1,),
        sample_counts: Sequence[int] = (_DEFAULT_SAMPLES,),
        replicas: int = 1,
    ) -> None:
        self.families = list(families) if families is not None else bundled_families()
        self.properties = list(properties) if properties is not None else bundled_properties()
        self.regimes = list(regimes) if regimes is not None else bundled_regimes()
        self.seed = seed
        self.size_scales = tuple(int(s) for s in size_scales)
        self.sample_counts = tuple(int(k) for k in sample_counts)
        self.replicas = int(replicas)
        if not self.size_scales or any(s < 1 for s in self.size_scales):
            raise ValueError(f"size_scales must be >= 1, got {size_scales!r}")
        if not self.sample_counts or any(k < 1 for k in self.sample_counts):
            raise ValueError(f"sample_counts must be >= 1, got {sample_counts!r}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")

    # -- variants ---------------------------------------------------------- #

    def variant_count(self) -> int:
        """Number of variant cells each base (family x property x construction x regime) combo expands to."""
        return len(self.size_scales) * len(self.sample_counts) * self.replicas

    def _iter_variants(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(scale, samples, replica)`` triples in deterministic order."""
        for scale in self.size_scales:
            for samples in self.sample_counts:
                for replica in range(self.replicas):
                    yield scale, samples, replica

    @staticmethod
    def _cell_name(
        family: WorkloadFamily,
        axis: PropertyAxis,
        construction: DeciderConstruction,
        regime: IdRegime,
        variant: Tuple[int, int, int] = _DEFAULT_VARIANT,
    ) -> str:
        base = f"mx:{family.name}:{axis.name}:{construction.name}:{regime.name}"
        if variant == _DEFAULT_VARIANT:
            return base
        scale, samples, replica = variant
        return f"{base}@s{scale}k{samples}r{replica}"

    def _spec_for(
        self,
        family: WorkloadFamily,
        axis: PropertyAxis,
        construction: DeciderConstruction,
        regime: IdRegime,
    ) -> ScenarioSpec:
        name = self._cell_name(family, axis, construction, regime)
        trap = construction.expect_defeat
        return ScenarioSpec(
            name=name,
            title=f"{axis.title} | {family.title} | {regime.name} identifiers",
            section="matrix",
            kind=regime.kind,
            graph_family=family.name,
            property_name=axis.name,
            decider_name=construction.name,
            build=_make_build(family, axis, construction, regime),
            sizes=family.sizes,
            quick_sizes=family.quick_sizes,
            samples=3,
            seed=cell_seed(self.seed, name),
            strategy="hill-climb",
            max_evaluations=_TRAP_BUDGET if trap else _HONEST_BUDGET,
            quick_max_evaluations=_TRAP_QUICK_BUDGET if trap else _HONEST_QUICK_BUDGET,
            batch_size=16,
            engine="cached",
            expect_correct=not trap,
            description=f"matrix cell: {family.name} x {axis.name} x {construction.name} x {regime.name}",
        )

    def _variant_spec(self, base: ScenarioSpec, family: WorkloadFamily, name: str, variant: Tuple[int, int, int]) -> ScenarioSpec:
        """Derive one variant's spec from the combo's base spec (cheaply).

        A shallow copy plus five field writes instead of
        :func:`dataclasses.replace` (which re-runs ``__init__``): on
        million-cell crosses the constructor is the dominant per-cell cost.
        """
        if variant == _DEFAULT_VARIANT:
            return base
        scale, samples, _replica = variant
        spec = copy.copy(base)
        write = object.__setattr__  # ScenarioSpec is frozen
        write(spec, "name", name)
        write(spec, "seed", cell_seed(self.seed, name))
        if scale != 1:
            write(spec, "sizes", tuple(size * scale for size in family.sizes))
            write(spec, "quick_sizes", tuple(size * scale for size in family.quick_sizes))
        write(spec, "samples", samples)
        return spec

    # -- streaming expansion ----------------------------------------------- #

    def _validate_filters(
        self,
        families: Optional[Sequence[str]],
        properties: Optional[Sequence[str]],
        regimes: Optional[Sequence[str]],
        constructions: Optional[Sequence[str]],
        kinds: Optional[Sequence[str]],
        exclude_families: Sequence[str],
    ) -> None:
        self._check_filter(families, {f.name for f in self.families}, "family")
        self._check_filter(exclude_families, {f.name for f in self.families}, "family")
        self._check_filter(properties, {p.name for p in self.properties}, "property")
        self._check_filter(regimes, {r.name for r in self.regimes}, "regime")
        self._check_filter(
            constructions,
            {c.name for p in self.properties for c in p.constructions},
            "construction",
        )
        self._check_filter(kinds, {r.kind for r in self.regimes}, "regime kind")

    def _iter_combos(
        self,
        families: Optional[Sequence[str]] = None,
        properties: Optional[Sequence[str]] = None,
        regimes: Optional[Sequence[str]] = None,
        constructions: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        exclude_families: Sequence[str] = (),
    ) -> Iterator[Tuple[WorkloadFamily, PropertyAxis, DeciderConstruction, IdRegime]]:
        """Yield the filtered base (family, axis, construction, regime) combos."""
        for family in self.families:
            if families is not None and family.name not in families:
                continue
            if family.name in exclude_families:
                continue
            for axis in self.properties:
                if properties is not None and axis.name not in properties:
                    continue
                if not axis.supports(family):
                    continue
                for construction in axis.constructions:
                    if constructions is not None and construction.name not in constructions:
                        continue
                    for regime in self.regimes:
                        if regimes is not None and regime.name not in regimes:
                            continue
                        if construction.expect_defeat:
                            # Traps are hunted, never swept: search cells
                            # only, and only on their whitelisted families.
                            if regime.kind != "search":
                                continue
                            if family.name not in construction.trap_families:
                                continue
                        if kinds is not None and regime.kind not in kinds:
                            continue
                        yield family, axis, construction, regime

    def iter_cells(
        self,
        families: Optional[Sequence[str]] = None,
        properties: Optional[Sequence[str]] = None,
        regimes: Optional[Sequence[str]] = None,
        constructions: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        exclude_families: Sequence[str] = (),
        names: Optional[Sequence[str]] = None,
    ) -> Iterator[WorkloadCell]:
        """Stream the matrix cells lazily, applying the per-axis filters.

        Every filter is an include-list of axis names (``None`` = no
        filter); ``exclude_families`` removes families after inclusion and
        ``names`` restricts to exact cell names (the CLI's positional
        arguments).  Unknown names in any filter raise ``KeyError`` so a
        typo cannot silently produce an empty sweep — filter validation
        happens eagerly (before the first cell is yielded); ``names`` that
        match nothing raise when the stream is exhausted.

        The order is a deterministic total order — families, properties,
        constructions, regimes, then the variant ladder (size scales,
        sample counts, replicas) — and memory stays O(1) in the number of
        cells: specs are constructed one at a time and never retained.
        """
        self._validate_filters(families, properties, regimes, constructions, kinds, exclude_families)
        combos = self._iter_combos(families, properties, regimes, constructions, kinds, exclude_families)
        return self._generate_cells(combos, names)

    def _generate_cells(self, combos, names: Optional[Sequence[str]]) -> Iterator[WorkloadCell]:
        wanted = set(names) if names is not None else None
        seen: set = set()
        for family, axis, construction, regime in combos:
            base: Optional[ScenarioSpec] = None
            for variant in self._iter_variants():
                name = self._cell_name(family, axis, construction, regime, variant)
                if wanted is not None and name not in wanted:
                    continue
                if base is None:
                    base = self._spec_for(family, axis, construction, regime)
                spec = self._variant_spec(base, family, name, variant)
                if wanted is not None:
                    seen.add(name)
                yield WorkloadCell(
                    family=family, axis=axis, construction=construction, regime=regime, spec=spec
                )
        if wanted is not None:
            missing = wanted - seen
            if missing:
                self._raise_for_missing(missing)

    def _raise_for_missing(self, missing: set) -> None:
        """Diagnose missing ``names``: a typo vs a cell the filters excluded."""
        # Stream the unfiltered name universe instead of materialising it —
        # with the variant axes engaged it can span millions of names.
        unknown = set(missing)
        for name in self.iter_names():
            unknown.discard(name)
            if not unknown:
                break
        if unknown:
            raise KeyError(f"unknown matrix cell(s) {sorted(unknown)}; see --list")
        raise KeyError(
            f"matrix cell(s) {sorted(missing)} exist but are excluded by the active filters"
        )

    def iter_names(self) -> Iterator[str]:
        """Stream every cell name of the unfiltered cross without building specs."""
        for family, axis, construction, regime in self._iter_combos():
            for variant in self._iter_variants():
                yield self._cell_name(family, axis, construction, regime, variant)

    def cells(
        self,
        families: Optional[Sequence[str]] = None,
        properties: Optional[Sequence[str]] = None,
        regimes: Optional[Sequence[str]] = None,
        constructions: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        exclude_families: Sequence[str] = (),
        names: Optional[Sequence[str]] = None,
    ) -> List[WorkloadCell]:
        """Materialise :meth:`iter_cells` into a list (small matrices only).

        A thin wrapper kept for the default-sized matrix and for callers
        that genuinely need random access; million-cell crosses should
        stay on the iterator.
        """
        return list(
            self.iter_cells(
                families=families,
                properties=properties,
                regimes=regimes,
                constructions=constructions,
                kinds=kinds,
                exclude_families=exclude_families,
                names=names,
            )
        )

    def count_cells(
        self,
        families: Optional[Sequence[str]] = None,
        properties: Optional[Sequence[str]] = None,
        regimes: Optional[Sequence[str]] = None,
        constructions: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        exclude_families: Sequence[str] = (),
        names: Optional[Sequence[str]] = None,
    ) -> int:
        """Count the cells the filters admit without constructing any spec.

        Used by ``--list --count-only`` as a fast sanity check on
        million-cell crosses: the base combos are enumerated (hundreds at
        most) and multiplied by the variant-ladder size.
        """
        self._validate_filters(families, properties, regimes, constructions, kinds, exclude_families)
        combos = self._iter_combos(families, properties, regimes, constructions, kinds, exclude_families)
        if names is None:
            return sum(self.variant_count() for _ in combos)
        wanted, count = set(names), 0
        seen: set = set()
        for family, axis, construction, regime in combos:
            for variant in self._iter_variants():
                name = self._cell_name(family, axis, construction, regime, variant)
                if name in wanted:
                    seen.add(name)
                    count += 1
        missing = wanted - seen
        if missing:
            self._raise_for_missing(missing)
        return count

    def scenarios(self, **filters) -> List[ScenarioSpec]:
        """The expanded cells as plain campaign scenario specs (materialised)."""
        return [cell.spec for cell in self.iter_cells(**filters)]

    def iter_scenarios(self, **filters) -> Iterator[ScenarioSpec]:
        """Stream the expanded cells as plain campaign scenario specs."""
        return (cell.spec for cell in self.iter_cells(**filters))

    @staticmethod
    def _check_filter(chosen: Optional[Sequence[str]], known: set, axis: str) -> None:
        unknown = sorted(set(chosen or ()) - known)
        if unknown:
            raise KeyError(f"unknown {axis} name(s) {unknown}; choose from {sorted(known)}")


def default_matrix(seed: int = 0) -> WorkloadMatrix:
    """The bundled matrix: all bundled families x properties x regimes."""
    return WorkloadMatrix(seed=seed)


def expand_records(cells: Iterable[WorkloadCell]) -> List[Dict[str, object]]:
    """JSON-ready records for a collection of cells (the ``--expand`` payload)."""
    return [cell.as_record() for cell in cells]


def expand_json(cells: Iterable[WorkloadCell]) -> str:
    """Deterministic JSON expansion: same matrix seed, byte-identical output.

    Materialises the whole payload — intended for the default-sized matrix
    where the array form (and its byte-identity across runs) matters.  Use
    :func:`expand_ndjson` to stream arbitrarily large crosses.
    """
    return json.dumps(expand_records(cells), indent=2, sort_keys=True) + "\n"


def expand_ndjson(cells: Iterable[WorkloadCell]) -> Iterator[str]:
    """Stream the expansion as NDJSON: one compact JSON line per cell.

    Consumes ``cells`` lazily and holds only one record at a time, so a
    million-cell cross expands in O(1) memory; each line is
    ``json.dumps(record, sort_keys=True)`` and therefore as deterministic
    as the array form.
    """
    for cell in cells:
        yield json.dumps(cell.as_record(), sort_keys=True)
