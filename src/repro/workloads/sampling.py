"""Budgeted sampling over the streaming workload matrix.

A million-cell cross cannot be swept exhaustively on every run; this module
chooses *which* cells a budgeted sweep spends its executions on, in two
modes:

* :func:`stratified_sample` — split the budget into per-stratum quotas
  (default strata: family x property) and draw a seeded reservoir sample
  inside each stratum while streaming the cross once, so every stratum is
  represented and memory stays O(budget + strata) no matter how many cells
  the cross expands to;
* :func:`importance_sample` — read a prior :class:`~repro.campaign.spec.CampaignReport`
  and spend the budget on the cells whose verdicts are *interesting*:
  never measured (or stale digest), flipped against expectation, or
  near-defeat (hunts that found a defeating assignment or nearly exhausted
  their budget).  Stable cells are replayed from the prior report / verdict
  store instead of re-run; leftover budget rotates deterministically
  through the stable cells so long-running campaigns re-validate them over
  time.

Both return a :class:`SamplePlan`: a JSON-serialisable record of the
selection with its own SHA-256 digest, so a sampled sweep is resumable —
re-deriving the plan from the same ``(seed, budget, strata, filters)``
reproduces the selection byte-for-byte, and a saved plan file pins it
across processes and machines.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..campaign.spec import CampaignReport, ScenarioResult, ScenarioSpec
from .matrix import WorkloadCell, WorkloadMatrix

__all__ = [
    "SamplePlan",
    "STRATUM_AXES",
    "stratified_sample",
    "importance_sample",
]

#: Axes a stratified sample may stratify on, mapping to the cell attribute.
STRATUM_AXES: Tuple[str, ...] = ("family", "property", "construction", "regime", "kind")

#: Importance scores (higher = more budget-worthy; 0 = replay).
SCORE_MISSING = 4  # never measured, or recorded under a stale digest
SCORE_FLIPPED = 3  # prior verdict contradicted the expectation
SCORE_NEAR_DEFEAT = 2  # hunts that found a defeat or nearly exhausted budget
SCORE_STABLE = 0


def _stratum_of(family, axis, construction, regime, strata: Tuple[str, ...]) -> Tuple[str, ...]:
    """The stratum label of one base combo under the chosen axes."""
    values = {
        "family": family.name,
        "property": axis.name,
        "construction": construction.name,
        "regime": regime.name,
        "kind": regime.kind,
    }
    return tuple(values[axis_name] for axis_name in strata)


def _stratum_rng(seed: int, stratum: Tuple[str, ...]) -> random.Random:
    """A deterministic per-stratum RNG independent of stratum enumeration order."""
    token = hashlib.sha256(f"{seed}|{'|'.join(stratum)}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(token[:8], "big"))


def _tiebreak(seed: int, name: str) -> int:
    """Deterministic pseudo-random rank used to break score ties cell-by-cell."""
    token = hashlib.sha256(f"{seed}#{name}".encode("utf-8")).digest()
    return int.from_bytes(token[:8], "big")


def _normalise_filters(filters: Dict[str, object]) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Canonicalise the axis filters for serialisation and digesting."""
    out = []
    for key in sorted(filters):
        value = filters[key]
        if value is None:
            continue
        if isinstance(value, str):
            value = (value,)
        out.append((key, tuple(sorted(value))))
    return tuple(out)


@dataclass(frozen=True)
class SamplePlan:
    """A deterministic, digestable selection of matrix cells to run.

    ``selected`` lists the chosen cell names in matrix stream order (the
    order a sweep visits them); ``replayed_count`` counts the cells the
    plan deliberately skips — a budgeted sweep replays their verdicts from
    the prior report or the verdict store instead of re-running them.
    ``filters`` records the axis filters the plan was drawn under, so the
    same slice of the cross can be re-streamed when the plan is executed.
    """

    mode: str  # "stratified" | "importance"
    matrix_seed: int
    seed: int
    budget: int
    strata: Tuple[str, ...]
    selected: Tuple[str, ...]
    replayed_count: int
    total_cells: int
    filters: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    source_digest: str = ""  # importance mode: digest of the prior report payload
    stratum_counts: Tuple[Tuple[str, int, int], ...] = field(default=())

    def digest(self) -> str:
        """SHA-256 over the canonical JSON payload: the plan's identity."""
        payload = self.as_dict()
        payload.pop("digest", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready record of the plan (digest included)."""
        return {
            "mode": self.mode,
            "matrix_seed": self.matrix_seed,
            "seed": self.seed,
            "budget": self.budget,
            "strata": list(self.strata),
            "selected": list(self.selected),
            "replayed_count": self.replayed_count,
            "total_cells": self.total_cells,
            "filters": [[key, list(values)] for key, values in self.filters],
            "source_digest": self.source_digest,
            "stratum_counts": [list(row) for row in self.stratum_counts],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SamplePlan":
        """Rebuild a plan from its JSON record."""
        return cls(
            mode=str(payload["mode"]),
            matrix_seed=int(payload["matrix_seed"]),
            seed=int(payload["seed"]),
            budget=int(payload["budget"]),
            strata=tuple(payload.get("strata", ())),
            selected=tuple(payload["selected"]),
            replayed_count=int(payload.get("replayed_count", 0)),
            total_cells=int(payload.get("total_cells", 0)),
            filters=tuple(
                (key, tuple(values)) for key, values in payload.get("filters", ())
            ),
            source_digest=str(payload.get("source_digest", "")),
            stratum_counts=tuple(
                (row[0], int(row[1]), int(row[2])) for row in payload.get("stratum_counts", ())
            ),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan (with its digest) as JSON and return the path."""
        path = Path(path)
        payload = self.as_dict()
        payload["digest"] = self.digest()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SamplePlan":
        """Load a saved plan, verifying its recorded digest when present."""
        payload = json.loads(Path(path).read_text())
        recorded = payload.get("digest")
        plan = cls.from_dict(payload)
        if recorded is not None and recorded != plan.digest():
            raise ValueError(
                f"sample plan {path} is corrupt: recorded digest {recorded[:12]}... "
                f"does not match recomputed {plan.digest()[:12]}..."
            )
        return plan

    def filter_kwargs(self) -> Dict[str, object]:
        """The recorded axis filters as ``iter_cells`` keyword arguments."""
        return {key: list(values) for key, values in self.filters}

    def iter_specs(self, matrix: WorkloadMatrix) -> Iterator[ScenarioSpec]:
        """Stream the selected cells' specs from ``matrix`` in plan order."""
        if not self.selected:
            return iter(())
        return matrix.iter_scenarios(names=self.selected, **self.filter_kwargs())

    def summary(self) -> str:
        """One-line human-readable description of the plan."""
        head = (
            f"{self.mode} plan: {len(self.selected)}/{self.total_cells} cells selected "
            f"(budget {self.budget}, seed {self.seed}, {self.replayed_count} replayed), "
            f"digest {self.digest()[:12]}"
        )
        if self.strata:
            head += f", strata {'x'.join(self.strata)}"
        return head


def _check_strata(strata: Sequence[str]) -> Tuple[str, ...]:
    strata = tuple(strata)
    unknown = sorted(set(strata) - set(STRATUM_AXES))
    if not strata:
        raise ValueError("at least one stratification axis is required")
    if unknown:
        raise ValueError(f"unknown stratum axis name(s) {unknown}; choose from {list(STRATUM_AXES)}")
    return strata


def stratified_sample(
    matrix: WorkloadMatrix,
    budget: int,
    seed: int = 0,
    strata: Sequence[str] = ("family", "property"),
    **filters,
) -> SamplePlan:
    """Draw a seeded stratified sample of ``budget`` cells from the matrix.

    The budget splits into per-stratum quotas (equal shares, the remainder
    going to the earliest strata in matrix order), and each stratum keeps a
    reservoir sample (Algorithm R, per-stratum seeded RNG) while the cross
    streams past exactly once.  Memory is O(budget + strata); the same
    ``(matrix seed, budget, seed, strata, filters)`` always produces the
    same plan, independent of platform or process count.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    strata = _check_strata(strata)

    # The stratum universe comes from the (cheap) base combos, so quotas
    # are known before the variant-expanded cross streams.
    universe: List[Tuple[str, ...]] = []
    seen_universe = set()
    for family, axis, construction, regime in matrix._iter_combos(**filters):
        label = _stratum_of(family, axis, construction, regime, strata)
        if label not in seen_universe:
            seen_universe.add(label)
            universe.append(label)
    if not universe:
        raise ValueError("the filters admit no cells to sample from")

    base, extra = divmod(budget, len(universe))
    quotas = {
        label: base + (1 if idx < extra else 0) for idx, label in enumerate(universe)
    }
    rngs = {label: _stratum_rng(seed, label) for label in universe}
    reservoirs: Dict[Tuple[str, ...], List[Tuple[int, str]]] = {label: [] for label in universe}
    seen_counts = {label: 0 for label in universe}

    # The draw never needs a spec — only names and strata — so it streams
    # the cheap name universe (same deterministic order as ``iter_cells``),
    # an order of magnitude faster over million-cell crosses.
    total = 0
    for family, axis, construction, regime in matrix._iter_combos(**filters):
        label = _stratum_of(family, axis, construction, regime, strata)
        quota = quotas[label]
        reservoir = reservoirs[label]
        rng = rngs[label]
        for variant in matrix._iter_variants():
            name = matrix._cell_name(family, axis, construction, regime, variant)
            index = total
            total += 1
            seen_counts[label] += 1
            if quota == 0:
                continue
            if len(reservoir) < quota:
                reservoir.append((index, name))
            else:
                j = rng.randrange(seen_counts[label])
                if j < quota:
                    reservoir[j] = (index, name)

    chosen = sorted(pair for reservoir in reservoirs.values() for pair in reservoir)
    selected = tuple(name for _, name in chosen)
    return SamplePlan(
        mode="stratified",
        matrix_seed=matrix.seed,
        seed=seed,
        budget=budget,
        strata=strata,
        selected=selected,
        replayed_count=total - len(selected),
        total_cells=total,
        filters=_normalise_filters(filters),
        stratum_counts=tuple(
            ("|".join(label), len(reservoirs[label]), seen_counts[label]) for label in universe
        ),
    )


def _importance_score(
    cell: WorkloadCell,
    prior: Optional[ScenarioResult],
    quick: bool,
    near_defeat_fraction: float,
) -> int:
    """Score one cell's budget-worthiness against its prior result."""
    if prior is None or not prior.summary:
        return SCORE_MISSING
    if not prior.spec_digest or prior.spec_digest != cell.spec.digest(quick):
        return SCORE_MISSING
    if not prior.ok:
        return SCORE_FLIPPED
    if cell.spec.kind == "search":
        budget = cell.spec.search_budget(quick) * max(1, prior.instances)
        executions = int(prior.details.get("executions", prior.sweeps))
        if prior.details.get("found") or executions >= near_defeat_fraction * budget:
            return SCORE_NEAR_DEFEAT
    return SCORE_STABLE


def importance_sample(
    matrix: WorkloadMatrix,
    budget: int,
    prior: Union[str, Path, CampaignReport],
    seed: int = 0,
    quick: bool = False,
    near_defeat_fraction: float = 0.8,
    **filters,
) -> SamplePlan:
    """Spend ``budget`` on the cells a prior report marks as interesting.

    Cells are scored against the prior :class:`~repro.campaign.spec.CampaignReport`
    (a report object or a path to its JSON): never-measured or
    stale-digest cells score highest, then verdicts that flipped against
    expectation, then near-defeat hunts (a counterexample was found, or
    ``near_defeat_fraction`` of the search budget was consumed).  The
    top-``budget`` cells by ``(score, deterministic per-seed tiebreak)``
    are selected; everything else is replayed.  Leftover budget beyond the
    interesting cells rotates through stable cells deterministically per
    seed, so repeated importance sweeps re-validate the stable region over
    time.  Memory is O(budget + |prior report|) over any cross size.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if isinstance(prior, (str, Path)):
        payload_text = Path(prior).read_text()
        source_digest = hashlib.sha256(payload_text.encode("utf-8")).hexdigest()
        report = CampaignReport.from_dict(json.loads(payload_text))
    else:
        report = prior
        source_digest = hashlib.sha256(
            json.dumps(report.as_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()
    prior_by_name = {result.name: result for result in report.results}

    # Keep the best `budget` cells on a min-heap: the worst survivor —
    # lowest score, then largest tiebreak — sits at the root and is
    # evicted as better cells stream past.
    heap: List[Tuple[int, int, int, str]] = []

    def push(entry: Tuple[int, int, int, str]) -> None:
        if len(heap) < budget:
            heapq.heappush(heap, entry)
        else:
            heapq.heappushpop(heap, entry)

    # Pass 1 — the cheap name stream: cells absent from the prior report
    # score SCORE_MISSING without a spec ever being built, so a small
    # report against a million-cell cross stays fast.
    prior_positions: Dict[str, int] = {}
    total = 0
    for family, axis, construction, regime in matrix._iter_combos(**filters):
        for variant in matrix._iter_variants():
            name = matrix._cell_name(family, axis, construction, regime, variant)
            if name in prior_by_name:
                prior_positions[name] = total
            else:
                push((SCORE_MISSING, -_tiebreak(seed, name), total, name))
            total += 1
    # Pass 2 — only the cells the prior actually measured need their spec
    # (digest staleness, search budgets): O(|report|) spec constructions.
    if prior_positions:
        for cell in matrix.iter_cells(names=sorted(prior_positions), **filters):
            score = _importance_score(
                cell, prior_by_name[cell.name], quick, near_defeat_fraction
            )
            push((score, -_tiebreak(seed, cell.name), prior_positions[cell.name], cell.name))

    chosen = sorted((index, name) for _score, _tb, index, name in heap)
    selected = tuple(name for _, name in chosen)
    return SamplePlan(
        mode="importance",
        matrix_seed=matrix.seed,
        seed=seed,
        budget=budget,
        strata=(),
        selected=selected,
        replayed_count=total - len(selected),
        total_cells=total,
        filters=_normalise_filters(filters),
        source_digest=source_digest,
    )
