"""Declarative workload matrix: families x properties x deciders x id regimes.

The campaign bundle (:mod:`repro.campaign.scenarios`) enumerates
hand-written scenario builders; this subpackage replaces "one builder per
cell" with a declarative cross of four axes:

* **graph families** (:mod:`.families`) — the paper's cycles, paths, grids
  and tori plus seedable hypercubes, random regular graphs, caterpillars,
  disjoint unions and degenerate single-node/single-edge cases;
* **properties** (:mod:`.axes`) — colouring, MIS, matching, path languages
  and hereditary closures, each knowing how to decorate a bare topology
  into yes/no instances;
* **decider constructions** — the property's honest decider and the
  identifier-dependent trap candidates from :mod:`repro.adversary`;
* **identifier regimes** — 1-based promise-style assignments, the bounded
  model (B), and adversarial hunts routed through
  :func:`~repro.adversary.search.find_counterexample`.

:class:`~repro.workloads.matrix.WorkloadMatrix` expands the cross into
:class:`~repro.campaign.spec.ScenarioSpec` cells with deterministic
per-cell digests; they run through the ordinary campaign runner (so
ParallelEngine shards them and VerdictStore replays them) and can be
registered next to the bundled scenarios via :func:`install_matrix`.
``python -m repro.workloads`` is the command-line front end.
"""

from .axes import (
    DeciderConstruction,
    IdRegime,
    PropertyAxis,
    bundled_properties,
    bundled_regimes,
    get_property_axis,
    get_regime,
    property_names,
    regime_names,
)
from .families import (
    WorkloadFamily,
    bundled_families,
    family_names,
    get_family,
)
from .matrix import (
    WorkloadCell,
    WorkloadMatrix,
    cell_seed,
    default_matrix,
    expand_json,
    expand_ndjson,
    expand_records,
)
from .sampling import (
    SamplePlan,
    importance_sample,
    stratified_sample,
)

__all__ = [
    "DeciderConstruction",
    "IdRegime",
    "PropertyAxis",
    "WorkloadCell",
    "WorkloadFamily",
    "WorkloadMatrix",
    "bundled_families",
    "bundled_properties",
    "bundled_regimes",
    "SamplePlan",
    "cell_seed",
    "default_matrix",
    "expand_json",
    "expand_ndjson",
    "expand_records",
    "family_names",
    "get_family",
    "get_property_axis",
    "get_regime",
    "importance_sample",
    "install_matrix",
    "property_names",
    "regime_names",
    "stratified_sample",
]


def install_matrix(seed: int = 0, **filters) -> int:
    """Register the matrix cells next to the bundled campaign scenarios.

    After this, ``python -m repro.campaign`` (with ``--workloads``) and
    :func:`repro.campaign.scenarios.get_scenario` resolve matrix cells by
    name exactly like hand-written scenarios.  Returns the number of cells
    registered.
    """
    from ..campaign.scenarios import register_scenarios

    specs = default_matrix(seed=seed).scenarios(**filters)
    register_scenarios(specs, replace=True)
    return len(specs)
