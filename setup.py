"""Setuptools shim.

The build metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works with the legacy (non-PEP-660) editable-install
path on environments whose setuptools predates editable wheel support.
"""

from setuptools import setup

setup()
