#!/usr/bin/env python3
"""Execute every fenced ``bash``/``python`` snippet in the documentation.

The CI ``docs`` job runs this script so the README and ``docs/*.md`` can
never drift from the code they describe: a snippet that stops running is
a red build, not a stale example.

Rules:

* fenced blocks whose info string is ``bash``/``sh`` run under
  ``bash -e`` from the repository root;
* fenced blocks whose info string is ``python``/``py`` are written to a
  temporary file and run with ``PYTHONPATH=src`` from the repository
  root;
* any other info string (or none — e.g. the JSON report-shape figures)
  is ignored;
* an HTML comment ``<!-- docs-snippet: skip (reason) -->`` on one of the
  three lines above a fence skips it — for snippets another CI job
  already executes (the examples job, the bench job's campaign and
  matrix gates) or that are deliberately long-running.  The reason is
  printed, so skips stay visible.

Usage::

    python tools/check_doc_snippets.py            # run everything
    python tools/check_doc_snippets.py --list     # show what would run
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_RE = re.compile(r"<!--\s*docs-snippet:\s*skip\b(.*?)-->")
FENCE_RE = re.compile(r"^```(\w*)\s*$")

#: How many lines above a fence the skip marker may sit.
SKIP_WINDOW = 3

LANG_BASH = frozenset({"bash", "sh"})
LANG_PYTHON = frozenset({"python", "py"})


@dataclass
class Snippet:
    path: Path
    line: int  # 1-based line of the opening fence
    lang: str
    body: str
    skip_reason: Optional[str]  # None = run it

    @property
    def label(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:{self.line} [{self.lang}]"


def extract_snippets(path: Path) -> List[Snippet]:
    """Parse one markdown file into its runnable snippets."""
    lines = path.read_text().splitlines()
    snippets: List[Snippet] = []
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i])
        if not match or not match.group(1):
            i += 1
            continue
        lang = match.group(1).lower()
        start = i
        body: List[str] = []
        i += 1
        while i < len(lines) and lines[i].strip() != "```":
            body.append(lines[i])
            i += 1
        i += 1  # past the closing fence
        if lang not in LANG_BASH and lang not in LANG_PYTHON:
            continue
        skip_reason = None
        for back in range(1, SKIP_WINDOW + 1):
            if start - back < 0:
                break
            found = SKIP_RE.search(lines[start - back])
            if found:
                skip_reason = found.group(1).strip() or "no reason given"
                break
        snippets.append(Snippet(path, start + 1, lang, "\n".join(body) + "\n", skip_reason))
    return snippets


def run_snippet(snippet: Snippet) -> subprocess.CompletedProcess:
    """Execute one snippet from the repository root."""
    if snippet.lang in LANG_BASH:
        return subprocess.run(
            ["bash", "-e", "-c", snippet.body],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
    with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as handle:
        handle.write(snippet.body)
        script = handle.name
    try:
        return subprocess.run(
            [sys.executable, script],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
    finally:
        Path(script).unlink(missing_ok=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the snippets without executing them"
    )
    args = parser.parse_args(argv)

    files = args.files or [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    snippets = [s for f in files for s in extract_snippets(f)]
    if not snippets:
        print("no bash/python snippets found", file=sys.stderr)
        return 1

    failures = 0
    ran = skipped = 0
    for snippet in snippets:
        if snippet.skip_reason is not None:
            skipped += 1
            print(f"SKIP  {snippet.label} — {snippet.skip_reason}")
            continue
        if args.list:
            print(f"RUN   {snippet.label}")
            continue
        result = run_snippet(snippet)
        ran += 1
        if result.returncode == 0:
            print(f"PASS  {snippet.label}")
        else:
            failures += 1
            print(f"FAIL  {snippet.label} (exit {result.returncode})")
            for stream, text in (("stdout", result.stdout), ("stderr", result.stderr)):
                if text.strip():
                    print(f"----- {stream} -----")
                    print(text.rstrip())
    if not args.list:
        print(f"{ran} executed, {skipped} skipped, {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
